// Package actoronly turns the broker's "single-writer actor
// discipline" comments into a checked property. Functions annotated
//
//	//vetactive:actoronly
//
// (broker state mutators: subscription/advert tables, index add/drop,
// shed decisions) may only be called from actor context: another
// actor-only function, a function annotated //vetactive:actorloop (an
// actor root — the dispatch loop itself, or a harness that *is* the
// actor goroutine), or a callback registered with the endpoint
// (Handle, After, Do, OnDrain arguments run on the actor loop).
//
// Flagged: calls from unannotated functions, calls from function
// literals launched with `go` or handed to a worker pool — exactly the
// paths a fan-out worker or gossip tick would take into actor state.
//
// The check is package-local (vetactive analyzers exchange no facts
// across packages): cross-package callers of exported actor-only
// methods remain a documented contract, and _test.go files are exempt
// because the test harness goroutine is the actor by construction.
package actoronly

import (
	"go/ast"
	"go/types"

	"github.com/gloss/active/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "actoronly",
	Doc:  "calls to //vetactive:actoronly functions must stay on the actor-loop call graph",
	Run:  run,
}

// registrars are methods whose function-literal arguments execute on
// the actor loop: endpoint handler registration, virtual-clock timers,
// the transport's actor-hop, and backpressure drain callbacks.
var registrars = map[string]bool{
	"Handle": true, "After": true, "Do": true, "OnDrain": true,
}

func run(pass *analysis.Pass) error {
	// First pass: classify this package's declared functions.
	actorOnly := make(map[types.Object]*ast.FuncDecl) // protected callees
	actorCtx := make(map[types.Object]bool)           // allowed callers
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			if analysis.FuncAnnotated(fd, "actoronly") {
				actorOnly[obj] = fd
				actorCtx[obj] = true
			}
			if analysis.FuncAnnotated(fd, "actorloop") {
				actorCtx[obj] = true
			}
		}
	}
	if len(actorOnly) == 0 {
		return nil
	}

	// Second pass: walk every function body tracking whether the
	// current context is actor context, and flag calls that leave it.
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			walk(pass, fd.Body, actorOnly, actorCtx, actorCtx[obj], fd.Name.Name)
		}
	}
	return nil
}

// walk inspects one body with a known actor-context flag, recursing
// into function literals with the context their bodies will execute
// under. Argument *evaluation* always inherits the caller's context;
// only literal *bodies* change context: registrar callbacks
// (Handle/After/Do/OnDrain) and callbacks handed to actor-context
// functions run on the actor loop, goroutine bodies never do.
func walk(pass *analysis.Pass, node ast.Node, actorOnly map[types.Object]*ast.FuncDecl,
	actorCtx map[types.Object]bool, inActor bool, where string) {

	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// A spawned goroutine is never actor context, even inside an
			// actor-only function.
			if callee := calleeObj(pass, n.Call); callee != nil && actorOnly[callee] != nil {
				pass.Reportf(n.Pos(), "go statement launches actor-only %s on a new goroutine", calleeName(callee))
			}
			goWhere := where + " (goroutine)"
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				walk(pass, lit.Body, actorOnly, actorCtx, false, goWhere)
			}
			for _, arg := range n.Call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					walk(pass, lit.Body, actorOnly, actorCtx, false, goWhere)
				} else {
					walk(pass, arg, actorOnly, actorCtx, inActor, where)
				}
			}
			return false
		case *ast.CallExpr:
			if callee := calleeObj(pass, n); callee != nil && actorOnly[callee] != nil && !inActor {
				pass.Reportf(n.Pos(), "call to actor-only %s from %s, which is not actor context (annotate it //vetactive:actoronly or //vetactive:actorloop, or route through the actor loop)",
					calleeName(callee), where)
			}
			argCtx := false
			argWhere := where
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && registrars[sel.Sel.Name] {
				argCtx = true
				argWhere = "a " + sel.Sel.Name + " callback"
			} else if callee := calleeObj(pass, n); callee != nil && actorCtx[callee] {
				argCtx = true
				argWhere = "a callback of " + calleeName(callee)
			}
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				// Immediately invoked literal runs inline.
				walk(pass, lit.Body, actorOnly, actorCtx, inActor, where)
			} else {
				walk(pass, n.Fun, actorOnly, actorCtx, inActor, where)
			}
			for _, arg := range n.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					walk(pass, lit.Body, actorOnly, actorCtx, argCtx, argWhere)
				} else {
					walk(pass, arg, actorOnly, actorCtx, inActor, where)
				}
			}
			return false
		case *ast.FuncLit:
			// Not a call argument (assigned to a variable, returned,
			// stored in a struct): assume it runs in the enclosing
			// context.
			walk(pass, n.Body, actorOnly, actorCtx, inActor, where)
			return false
		}
		return true
	})
}

// calleeObj resolves the called function's declaration object, for
// plain and method calls.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func calleeName(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Signature().Recv(); recv != nil {
			if named := analysis.NamedOf(recv.Type()); named != nil {
				return named.Obj().Name() + "." + fn.Name()
			}
		}
	}
	return obj.Name()
}
