// Package atomicstats enforces the stats-snapshot rule the knowledge
// syncer retrofitted after its counters raced: a struct field read by
// a Stats() (or Metrics()) snapshot method and written elsewhere in
// the package must be safe to read concurrently — an atomic.* value, a
// struct composed entirely of atomics (the transport's counter block),
// or guarded by a mutex the snapshot method itself locks.
//
// Confinement the analyzer cannot see (the broker's actor-loop-only
// Stats, the simulator's quiescent-world Metrics) is declared, not
// guessed: annotate the snapshot method with
//
//	//vetactive:ignore atomicstats <why the struct is confined>
//
// which skips the method and documents the contract at its
// declaration.
//
// Heuristics, stated openly: reads are field selections rooted at the
// receiver inside the snapshot method (including len() of map/slice
// fields and whole-struct copies); writes are assignments, inc/dec and
// indexed stores to the same field anywhere else in the package,
// excluding constructors (functions named New*/new*) — initialization
// before publication is not a race.
package atomicstats

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/gloss/active/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicstats",
	Doc:  "fields read by Stats()/Metrics() snapshots and written elsewhere must be atomic or mutex-guarded",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if fd.Name.Name != "Stats" && fd.Name.Name != "Metrics" {
				continue
			}
			if analysis.FuncAnnotated(fd, "ignore atomicstats") {
				// Declared confinement: the snapshot is documented as
				// single-goroutine. (FuncAnnotated matches the directive
				// prefix "ignore atomicstats ...".)
				continue
			}
			checkSnapshot(pass, fd)
		}
	}
	return nil
}

func checkSnapshot(pass *analysis.Pass, fd *ast.FuncDecl) {
	recvType := analysis.ReceiverType(pass.TypesInfo, fd)
	if recvType == nil {
		return
	}
	if _, ok := recvType.Underlying().(*types.Struct); !ok {
		return
	}
	recvObj := receiverObj(pass, fd)
	if recvObj == nil {
		return
	}
	// A snapshot method that locks a mutex is the sanctioned
	// mutex-guarded shape; writers are then assumed to take the same
	// lock (the race detector and the differential tests cover the
	// rest).
	if locksMutex(pass, fd.Body) {
		return
	}

	// Collect first-hop fields read through the receiver, with the
	// position of the first read.
	reads := make(map[*types.Var]ast.Node)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[base] != recvObj {
			return true
		}
		field := fieldOf(pass, sel)
		if field == nil {
			return true
		}
		if _, seen := reads[field]; !seen {
			reads[field] = sel
		}
		return true
	})
	if len(reads) == 0 {
		return
	}

	for field, site := range reads {
		if atomicSafe(field.Type()) || isMutex(field.Type()) {
			continue
		}
		if w := findWrite(pass, recvType, field, fd); w != nil {
			pass.Reportf(site.Pos(),
				"%s.%s reads field %s, which is written elsewhere (%s) without atomics or a lock; make it atomic.*, lock it in both places, or annotate the snapshot //vetactive:ignore atomicstats <confinement>",
				recvType.Obj().Name(), fd.Name.Name, field.Name(), pass.Fset.Position(w.Pos()))
		}
	}
}

// receiverObj returns the receiver variable's object.
func receiverObj(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// fieldOf resolves a selector to the struct field it selects, or nil.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// locksMutex reports whether body calls Lock or RLock.
func locksMutex(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// atomicSafe reports whether t is concurrency-safe to read: a sync/atomic
// type, or a struct whose every field is (the transport's counter
// block shape).
func atomicSafe(t types.Type) bool {
	named := analysis.NamedOf(t)
	if named != nil {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			return true
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	if st.NumFields() == 0 {
		return false
	}
	for i := range st.NumFields() {
		if !atomicSafe(st.Field(i).Type()) {
			return false
		}
	}
	return true
}

func isMutex(t types.Type) bool {
	named := analysis.NamedOf(t)
	if named == nil {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || pkg.Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// findWrite returns a write to the field (on any value of the receiver
// type) outside the snapshot method and outside constructors, or nil.
func findWrite(pass *analysis.Pass, recvType *types.Named, field *types.Var, snapshot *ast.FuncDecl) ast.Node {
	var hit ast.Node
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd == snapshot {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "New") || strings.HasPrefix(fd.Name.Name, "new") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if hit != nil {
					return false
				}
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if writesField(pass, lhs, field) {
							hit = n
						}
					}
				case *ast.IncDecStmt:
					if writesField(pass, n.X, field) {
						hit = n
					}
				}
				return hit == nil
			})
			if hit != nil {
				return hit
			}
		}
	}
	return nil
}

// writesField reports whether the assignment target expr stores into
// the given field: a direct selector (x.f = ..., x.f++), a nested one
// (x.f.g = ...), or an element store through it (x.f[k] = ...).
func writesField(pass *analysis.Pass, expr ast.Expr, field *types.Var) bool {
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			if fieldOf(pass, e) == field {
				return true
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}
