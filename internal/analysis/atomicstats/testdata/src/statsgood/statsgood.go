package statsgood

import (
	"sync"
	"sync/atomic"
)

// counters is an all-atomic block, safe to snapshot field by field —
// the transport's counter shape.
type counters struct {
	sent    atomic.Uint64
	dropped atomic.Uint64
}

type Stats struct {
	Sent, Dropped uint64
	Queued        int
}

type atomicNode struct {
	c counters
}

func (n *atomicNode) send() { n.c.sent.Add(1) }

func (n *atomicNode) Stats() Stats {
	return Stats{Sent: n.c.sent.Load(), Dropped: n.c.dropped.Load()}
}

// lockedNode guards its counters with a mutex the snapshot takes.
type lockedNode struct {
	mu     sync.Mutex
	queued int
}

func (n *lockedNode) enqueue() {
	n.mu.Lock()
	n.queued++
	n.mu.Unlock()
}

func (n *lockedNode) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Stats{Queued: n.queued}
}

// confinedBroker is single-goroutine by contract: the annotation
// declares the confinement the analyzer cannot prove.
type confinedBroker struct {
	matched uint64
}

func (b *confinedBroker) handle() { b.matched++ }

// Stats must be called from the actor goroutine only.
//
//vetactive:ignore atomicstats actor-confined: Stats is documented actor-goroutine-only
func (b *confinedBroker) Stats() Stats {
	return Stats{Sent: b.matched}
}

// readOnly has no writers outside the constructor: nothing to flag.
type readOnly struct {
	limit int
}

func newReadOnly(limit int) *readOnly { return &readOnly{limit: limit} }

func (r *readOnly) Stats() Stats { return Stats{Queued: r.limit} }
