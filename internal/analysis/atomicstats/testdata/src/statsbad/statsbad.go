package statsbad

type Stats struct {
	Sent    uint64
	Dropped uint64
}

type node struct {
	stats    Stats
	inFlight int
}

func newNode() *node { return &node{} }

// send runs on a worker goroutine.
func (n *node) send() {
	n.stats.Sent++
	n.inFlight++
}

func (n *node) drop() {
	n.stats.Dropped++
}

// Stats snapshots counters that workers mutate concurrently.
func (n *node) Stats() Stats {
	s := n.stats   // want `node\.Stats reads field stats, which is written elsewhere`
	_ = n.inFlight // want `node\.Stats reads field inFlight`
	return s
}
