package atomicstats

import (
	"testing"

	"github.com/gloss/active/internal/analysis/analysistest"
)

func TestAtomicstats(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "statsbad", "statsgood")
}
