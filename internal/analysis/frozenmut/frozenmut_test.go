package frozenmut

import (
	"testing"

	"github.com/gloss/active/internal/analysis/analysistest"
)

func TestFrozenmut(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "frozenbad", "frozengood")
}
