// Package event is a fixture stub mirroring the freeze/borrow surface
// of the real internal/event package.
package event

type Event struct {
	attrs  map[string]any
	frozen bool
}

func New(typ string) *Event { return &Event{attrs: map[string]any{"type": typ}} }

func (e *Event) Freeze() *Event { e.frozen = true; return e }

func (e *Event) Set(name string, v any) *Event { e.attrs[name] = v; return e }

func (e *Event) SetBody(b []byte) *Event { e.attrs["body"] = b; return e }

func (e *Event) Stamp(seq uint64) *Event { e.attrs["seq"] = seq; return e }

func (e *Event) Mutable() *Event {
	if !e.frozen {
		return e
	}
	cp := *e
	cp.frozen = false
	return &cp
}

func (e *Event) CloneDetached() *Event { cp := *e; cp.frozen = false; return &cp }

func (e *Event) Get(name string) any { return e.attrs[name] }
