package frozenbad

import "event"

type bus struct{}

func (bus) Subscribe(filter string, deliver func(*event.Event)) {}

type sink struct {
	Deliver func(*event.Event)
}

func chain() {
	ev := event.New("alert")
	ev.Freeze().Set("k", 1) // want `Set called on a frozen event`
}

func throughLocal() {
	ev := event.New("alert")
	frozen := ev.Freeze()
	frozen.SetBody([]byte("x")) // want `SetBody called on a frozen event`
	frozen.Stamp(7)             // want `Stamp called on a frozen event`
}

func subscriber(b bus) {
	b.Subscribe("type = alert", func(ev *event.Event) {
		ev.Set("seen", true) // want `Set called on a frozen event`
	})
}

func deliverField() sink {
	return sink{Deliver: func(ev *event.Event) {
		ev.Stamp(1) // want `Stamp called on a frozen event`
	}}
}
