package frozengood

import "event"

type bus struct{}

func (bus) Subscribe(filter string, deliver func(*event.Event)) {}

// mutableBeforeFreeze builds the event first, then freezes: the
// mutators run while it is still writable.
func mutableBeforeFreeze() *event.Event {
	ev := event.New("alert")
	ev.Set("k", 1).Stamp(7)
	return ev.Freeze()
}

// thawed goes through the sanctioned escape hatch before mutating.
func thawed() {
	ev := event.New("alert").Freeze()
	cp := ev.Mutable()
	cp.Set("k", 2)
	detached := ev.CloneDetached()
	detached.SetBody([]byte("x"))
}

// reassigned clears the taint by rebinding the variable to a fresh
// event.
func reassigned() {
	ev := event.New("alert")
	ev = ev.Freeze().Mutable()
	ev.Set("k", 3)
	ev = event.New("other")
	ev.Stamp(9)
}

// reader only inspects the delivered (frozen) event.
func reader(b bus) {
	b.Subscribe("type = alert", func(ev *event.Event) {
		_ = ev.Get("k")
	})
}

// borrowed documents a deliberate exception: the harness knows the
// event is uniquely owned despite the freeze.
func borrowed() {
	ev := event.New("alert").Freeze()
	//vetactive:ignore frozenmut fixture exercises the runtime panic itself
	ev.Set("k", 4)
}
