// Package frozenmut promotes the event plane's runtime freeze panic to
// a compile-time report. An event.Event crossing the dispatch boundary
// is frozen (Freeze()) and shared zero-copy between subscribers; its
// mutators (Set, SetBody, Stamp) panic at runtime when called on a
// frozen value. This analyzer flags the two local flows that reach
// that panic:
//
//   - calling a mutator on a value produced by Freeze(), directly
//     (ev.Freeze().Set(...)) or through a local variable;
//   - calling a mutator on the event parameter of a subscriber
//     callback (a function literal passed to a Subscribe call or bound
//     to a Deliver field) — delivered events are frozen by contract.
//
// Reassigning through the sanctioned escape hatches — Mutable(),
// Clone(), CloneDetached(), or a fresh event — clears the taint. The
// analysis is intra-function and name-based (a named type Event with a
// Freeze method), so it applies to any package handling events without
// cross-package facts.
package frozenmut

import (
	"go/ast"
	"go/types"

	"github.com/gloss/active/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "frozenmut",
	Doc:  "flag event.Event mutator calls on values that flow from Freeze() or dispatch boundaries",
	Run:  run,
}

// mutators panic on frozen events.
var mutators = map[string]bool{"Set": true, "SetBody": true, "Stamp": true}

// thawers return a mutable event.
var thawers = map[string]bool{"Mutable": true, "Clone": true, "CloneDetached": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body, nil)
			}
		}
	}
	return nil
}

// isEvent reports whether t is (a pointer to) a named type Event that
// has a Freeze method — the freeze/borrow contract's shape.
func isEvent(t types.Type) bool {
	named := analysis.NamedOf(t)
	if named == nil || named.Obj().Name() != "Event" {
		return false
	}
	for m := range named.NumMethods() {
		if named.Method(m).Name() == "Freeze" {
			return true
		}
	}
	return false
}

// checkFunc walks one function body in source order, tracking which
// local objects hold frozen events. frozen is the inherited taint for
// closures (nil for top-level functions).
func checkFunc(pass *analysis.Pass, body ast.Node, frozen map[types.Object]bool) {
	if frozen == nil {
		frozen = make(map[types.Object]bool)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				ident, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[ident]
				if obj == nil {
					obj = pass.TypesInfo.Uses[ident]
				}
				if obj == nil || !isEvent(obj.Type()) {
					continue
				}
				// Multi-value RHS (x, err := f()) can't be a Freeze chain.
				if len(n.Rhs) != len(n.Lhs) {
					frozen[obj] = false
					continue
				}
				frozen[obj] = freezesValue(pass, n.Rhs[i], frozen)
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !mutators[sel.Sel.Name] {
				return true
			}
			recv, ok := pass.TypesInfo.Types[sel.X]
			if !ok || !isEvent(recv.Type) {
				return true
			}
			if freezesValue(pass, sel.X, frozen) {
				pass.Reportf(n.Pos(), "%s called on a frozen event (it panics at runtime; use Mutable() or CloneDetached() for a writable copy)", sel.Sel.Name)
			}
		case *ast.FuncLit:
			// Subscriber callbacks receive frozen events: taint the
			// event-typed parameters of literals bound to dispatch
			// boundaries, and inherit the enclosing taint either way.
			inner := make(map[types.Object]bool, len(frozen)+1)
			for k, v := range frozen {
				inner[k] = v
			}
			if deliveryCallback(pass, body, n) {
				for _, field := range n.Type.Params.List {
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil && isEvent(obj.Type()) {
							inner[obj] = true
						}
					}
				}
			}
			checkFunc(pass, n.Body, inner)
			return false
		}
		return true
	})
}

// freezesValue reports whether the expression produces a frozen event:
// a Freeze() call, or a read of a tainted local.
func freezesValue(pass *analysis.Pass, e ast.Expr, frozen map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		return obj != nil && frozen[obj]
	case *ast.ParenExpr:
		return freezesValue(pass, e.X, frozen)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Freeze" {
				if recv, ok := pass.TypesInfo.Types[sel.X]; ok && isEvent(recv.Type) {
					return true
				}
			}
			if thawers[sel.Sel.Name] {
				return false
			}
		}
	}
	return false
}

// deliveryCallback reports whether lit is bound to a dispatch
// boundary: an argument of a call whose method is named Subscribe, or
// the value of a Deliver key in a composite literal.
func deliveryCallback(pass *analysis.Pass, scope ast.Node, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Subscribe" {
				for _, arg := range n.Args {
					if arg == lit {
						found = true
					}
				}
			}
		case *ast.KeyValueExpr:
			if key, ok := n.Key.(*ast.Ident); ok && key.Name == "Deliver" && n.Value == lit {
				found = true
			}
		}
		return !found
	})
	return found
}
