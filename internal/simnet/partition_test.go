package simnet

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/nodecfg"
	"github.com/gloss/active/internal/wire"
)

// buildPartWorld wires nNodes on a ring: every node forwards a ping with
// a decremented TTL to its successor, and every fourth node also fans
// out to two more distant nodes, so traffic crosses execution-partition
// boundaries constantly (neighbours always live in different partitions
// when Shards > 1 — creation index mod P).
func buildPartWorld(cfg Config, nNodes int) (*World, []*Node) {
	w := NewWorld(cfg)
	nodes := make([]*Node, nNodes)
	for i := 0; i < nNodes; i++ {
		nodes[i] = w.NewNode(ids.FromString(fmt.Sprintf("pn-%02d", i)), "eu",
			netapi.Coord{X: float64(i * 50), Y: float64((i % 5) * 40)})
	}
	for i, n := range nodes {
		i, n := i, n
		n.Handle("test.ping", func(_ netapi.Ctx, from ids.ID, msg wire.Message) {
			p := msg.(*ping)
			if p.N <= 0 {
				return
			}
			n.Send(nodes[(i+1)%nNodes].ID(), &ping{N: p.N - 1})
			if i%4 == 0 {
				n.Send(nodes[(i+7)%nNodes].ID(), &ping{N: p.N / 2})
			}
		})
	}
	return w, nodes
}

func runPartWorkload(w *World, nodes []*Node) Metrics {
	for i, n := range nodes {
		n.Send(nodes[(i+3)%len(nodes)].ID(), &ping{N: 12})
	}
	w.RunFor(2 * time.Second)
	return w.Metrics()
}

// TestPartitionedDeterminism: a partitioned world with jitter and loss
// enabled must produce bit-identical Metrics across runs with the same
// seed and partition count — conservative epochs keep the parallel
// execution deterministic.
func TestPartitionedDeterminism(t *testing.T) {
	run := func() Metrics {
		w, nodes := buildPartWorld(Config{
			Common:   nodecfg.Common{Shards: 3},
			Seed:     7,
			Jitter:   300 * time.Microsecond,
			LossRate: 0.05,
		}, 12)
		if w.ExecPartitions() != 3 {
			t.Fatalf("ExecPartitions = %d, want 3", w.ExecPartitions())
		}
		return runPartWorkload(w, nodes)
	}
	m1, m2 := run(), run()
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("same seed, different metrics:\nrun1: %+v\nrun2: %+v", m1, m2)
	}
	if m1.Delivered == 0 || m1.Dropped == 0 {
		t.Fatalf("workload too tame to prove anything: %+v", m1)
	}
}

// TestPartitionedMatchesSerial: with jitter disabled and no loss the
// partition-local RNGs never fire, so a partitioned run must produce
// exactly the serial world's Metrics — counters, per-kind tallies, and
// even the delivery-batcher's FlushEvents/BatchedMsgs split, since
// cross-partition mail merged at a barrier coalesces into the same
// (destination, instant) batches the serial scheduler forms.
func TestPartitionedMatchesSerial(t *testing.T) {
	run := func(parts int) Metrics {
		w, nodes := buildPartWorld(Config{
			Common:        nodecfg.Common{Shards: parts},
			Seed:          7,
			DisableJitter: true,
		}, 12)
		return runPartWorkload(w, nodes)
	}
	serial := run(1)
	for _, parts := range []int{2, 3, 5} {
		if got := run(parts); !reflect.DeepEqual(got, serial) {
			t.Fatalf("parts=%d diverges from serial:\nserial: %+v\nparts:  %+v", parts, serial, got)
		}
	}
	if serial.Delivered == 0 {
		t.Fatal("workload delivered nothing")
	}
}

// TestPartitionedRequestReply exercises the request/reply path across a
// partition boundary: the pending-request table and its timeout timer
// live on the requester's partition, the handler on the responder's.
func TestPartitionedRequestReply(t *testing.T) {
	w := NewWorld(Config{Common: nodecfg.Common{Shards: 2}, Seed: 3})
	a := w.NewNode(ids.FromString("pa"), "eu", netapi.Coord{})
	b := w.NewNode(ids.FromString("pb"), "us", netapi.Coord{X: 500})
	if a.part == b.part {
		t.Fatal("test premise broken: nodes share a partition")
	}
	b.Handle("test.ping", func(ctx netapi.Ctx, _ ids.ID, msg wire.Message) {
		ctx.Reply(&pong{N: msg.(*ping).N * 2})
	})
	got, calls := 0, 0
	a.Request(b.ID(), &ping{N: 21}, time.Second, func(reply wire.Message, err error) {
		calls++
		if err != nil {
			t.Fatalf("request error: %v", err)
		}
		got = reply.(*pong).N
	})
	w.RunFor(time.Second)
	if calls != 1 || got != 42 {
		t.Fatalf("calls=%d got=%d, want 1 call returning 42", calls, got)
	}
}

// TestPartitionedBudgetRelease pins the cross-partition outbox-budget
// discipline: releases happen on the sender's own wheel at the delivery
// instant, so a saturated queue drains and the drain callback fires even
// though every delivery lands in a foreign partition.
func TestPartitionedBudgetRelease(t *testing.T) {
	w := NewWorld(Config{
		Common:        nodecfg.Common{Shards: 2, OutboxHighWater: 4, OutboxLowWater: 2},
		Seed:          5,
		DisableJitter: true,
	})
	a := w.NewNode(ids.FromString("qa"), "eu", netapi.Coord{})
	b := w.NewNode(ids.FromString("qb"), "eu", netapi.Coord{})
	b.Handle("test.ping", func(netapi.Ctx, ids.ID, wire.Message) {})
	drains := 0
	a.OnDrain(func(ids.ID) { drains++ })
	// No codec installed: each message costs one budget byte. Six sends
	// saturate the budget of four; the overflow two are dropped.
	for i := 0; i < 6; i++ {
		a.Send(b.ID(), &ping{N: i})
	}
	if !a.Saturated(b.ID()) {
		t.Fatal("queue should be saturated after overrun")
	}
	m := w.Metrics()
	if m.DroppedOverflow != 2 {
		t.Fatalf("DroppedOverflow = %d, want 2", m.DroppedOverflow)
	}
	w.RunFor(time.Second)
	if a.Saturated(b.ID()) || a.QueuedBytes(b.ID()) != 0 {
		t.Fatalf("queue not drained: saturated=%v queued=%d", a.Saturated(b.ID()), a.QueuedBytes(b.ID()))
	}
	if drains != 1 {
		t.Fatalf("drain callbacks = %d, want 1", drains)
	}
	if got := w.Metrics().Delivered; got != 4 {
		t.Fatalf("Delivered = %d, want 4", got)
	}
}
