package simnet

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/wire"
)

// pubWorld runs one PubMsg a→b under the given codec and returns metrics.
func pubWorld(t *testing.T, cfg Config) Metrics {
	t.Helper()
	w := NewWorld(cfg)
	a := w.NewNode(ids.FromString("a"), "eu", netapi.Coord{})
	b := w.NewNode(ids.FromString("b"), "eu", netapi.Coord{})
	b.Handle("pubsub.pub", func(netapi.Ctx, ids.ID, wire.Message) {})
	ev := event.New("gps.location", "gps", 0).
		Set("user", event.S("bob")).
		Set("x", event.F(4.5)).
		Stamp(1)
	a.Send(b.ID(), &pubsub.PubMsg{Event: ev})
	w.RunFor(time.Second)
	return w.Metrics()
}

func pubsubReg() *wire.Registry {
	reg := wire.NewRegistry()
	pubsub.RegisterMessages(reg)
	return reg
}

func TestBinaryCodecAccountsFewerBytes(t *testing.T) {
	reg := pubsubReg()
	mXML := pubWorld(t, Config{Seed: 1, Codec: reg})
	mBin := pubWorld(t, Config{Seed: 1, Codec: wire.NewBinaryCodec(reg)})
	if mXML.Bytes == 0 || mBin.Bytes == 0 {
		t.Fatalf("bytes not accounted: xml=%d bin=%d", mXML.Bytes, mBin.Bytes)
	}
	if mBin.Bytes*3 > mXML.Bytes {
		t.Fatalf("binary (%dB) should be ≤ 1/3 of XML (%dB) for a small event publish",
			mBin.Bytes, mXML.Bytes)
	}
	if mXML.Delivered != mBin.Delivered {
		t.Fatalf("codec choice changed delivery: %d vs %d", mXML.Delivered, mBin.Delivered)
	}
}

func TestDisableMetricsZeroesEverything(t *testing.T) {
	m := pubWorld(t, Config{Seed: 1, Codec: pubsubReg(), DisableMetrics: true})
	if m.Sent != 0 || m.Delivered != 0 || m.Bytes != 0 || len(m.ByKind) != 0 {
		t.Fatalf("metrics accounted despite DisableMetrics: %+v", m)
	}
}

func TestTypedNilCodecSkipsAccounting(t *testing.T) {
	var nilReg *wire.Registry
	m := pubWorld(t, Config{Seed: 1, Codec: nilReg}) // typed nil in the interface
	if m.Bytes != 0 {
		t.Fatalf("typed-nil codec accounted %d bytes", m.Bytes)
	}
	if m.Sent == 0 || m.Delivered == 0 {
		t.Fatalf("plain counters should still run: %+v", m)
	}
}

func TestSetCodecAfterConstruction(t *testing.T) {
	reg := pubsubReg()
	w := NewWorld(Config{Seed: 1})
	w.SetCodec(reg)
	a := w.NewNode(ids.FromString("a"), "eu", netapi.Coord{})
	b := w.NewNode(ids.FromString("b"), "eu", netapi.Coord{})
	b.Handle("pubsub.pub", func(netapi.Ctx, ids.ID, wire.Message) {})
	a.Send(b.ID(), &pubsub.PubMsg{Event: event.New("t", "s", 0).Stamp(1)})
	w.RunFor(time.Second)
	if w.Metrics().Bytes == 0 {
		t.Fatal("SetCodec did not enable byte accounting")
	}
	w.SetCodec(nil)
	before := w.Metrics().Bytes
	a.Send(b.ID(), &pubsub.PubMsg{Event: event.New("t", "s", 0).Stamp(2)})
	w.RunFor(time.Second)
	if w.Metrics().Bytes != before {
		t.Fatal("SetCodec(nil) did not stop byte accounting")
	}
}
