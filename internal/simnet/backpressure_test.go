package simnet

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/wire"
)

// ctlPing is a control-marked message (wire.ControlMessage) for the
// budget-exemption tests.
type ctlPing struct {
	N int `xml:"n"`
}

func (ctlPing) Kind() string  { return "test.ctlping" }
func (ctlPing) Control() bool { return true }

// TestOutboxBudgetMirror: without a codec each message counts one byte,
// so OutboxHighWater=3 admits three in-flight messages per destination
// and drops the rest with the overflow reason, mirroring the transport.
func TestOutboxBudgetMirror(t *testing.T) {
	w, a, b := twoNodeWorld(t, Config{Seed: 1, DisableJitter: true,
		OutboxHighWater: 3, OutboxLowWater: 1})
	delivered := 0
	b.Handle("test.ping", func(netapi.Ctx, ids.ID, wire.Message) { delivered++ })

	var drains []ids.ID
	a.OnDrain(func(to ids.ID) { drains = append(drains, to) })

	for i := 0; i < 6; i++ {
		a.Send(b.ID(), &ping{N: i})
	}
	if got := a.QueuedBytes(b.ID()); got != 3 {
		t.Fatalf("QueuedBytes = %d, want 3 (budget admits 3 in flight)", got)
	}
	if !a.Saturated(b.ID()) {
		t.Fatal("Saturated must latch at the high watermark")
	}
	m := w.Metrics()
	if m.DroppedOverflow != 3 || m.Dropped != 3 {
		t.Fatalf("DroppedOverflow = %d, Dropped = %d, want 3, 3", m.DroppedOverflow, m.Dropped)
	}

	// Control messages bypass the budget even while saturated.
	a.Send(b.ID(), &ctlPing{N: 99})
	if got := w.Metrics().DroppedOverflow; got != 3 {
		t.Fatalf("control message was budget-dropped (overflow now %d)", got)
	}
	ctlDelivered := false
	b.Handle("test.ctlping", func(netapi.Ctx, ids.ID, wire.Message) { ctlDelivered = true })

	// Delivery releases the budget: the saturation clears, the drain
	// callback fires for the destination, and new sends are admitted.
	w.RunFor(time.Second)
	if delivered != 3 {
		t.Fatalf("delivered %d, want 3", delivered)
	}
	if !ctlDelivered {
		t.Fatal("control message never delivered")
	}
	if a.Saturated(b.ID()) {
		t.Fatal("saturation must clear once in-flight bytes drain below the low watermark")
	}
	if a.QueuedBytes(b.ID()) != 0 {
		t.Fatalf("QueuedBytes = %d after delivery, want 0", a.QueuedBytes(b.ID()))
	}
	if len(drains) == 0 || drains[0] != b.ID() {
		t.Fatalf("drain callbacks = %v, want at least one for %v", drains, b.ID())
	}
	a.Send(b.ID(), &ping{N: 100})
	w.RunFor(time.Second)
	if delivered != 4 {
		t.Fatalf("post-drain send not delivered (delivered = %d)", delivered)
	}
}

// TestOutboxBudgetByteSized: with a codec installed the budget counts
// real encoded bytes, the same quantity Metrics.Bytes accounts.
func TestOutboxBudgetByteSized(t *testing.T) {
	reg := wire.NewRegistry()
	reg.Register(&ping{})
	// One ping envelope is ~100+ bytes of XML; budget two of them.
	probe := NewWorld(Config{Seed: 1, Codec: reg})
	pa := probe.NewNode(ids.FromString("pa"), "eu", netapi.Coord{})
	pb := probe.NewNode(ids.FromString("pb"), "eu", netapi.Coord{X: 1})
	pa.Send(pb.ID(), &ping{N: 1})
	one := int(probe.Metrics().Bytes)
	if one == 0 {
		t.Fatal("probe world accounted no bytes")
	}

	w := NewWorld(Config{Seed: 1, Codec: reg, DisableJitter: true,
		OutboxHighWater: 2*one + 1})
	a := w.NewNode(ids.FromString("a"), "eu", netapi.Coord{})
	b := w.NewNode(ids.FromString("b"), "eu", netapi.Coord{X: 1})
	for i := 0; i < 4; i++ {
		a.Send(b.ID(), &ping{N: i})
	}
	if got := a.QueuedBytes(b.ID()); got != 3*one {
		// Two fit strictly below the watermark; the third crosses it
		// (sends are accepted while queued bytes are below high).
		t.Fatalf("QueuedBytes = %d, want %d (3 envelopes of %d bytes)", got, 3*one, one)
	}
	if got := w.Metrics().DroppedOverflow; got != 1 {
		t.Fatalf("DroppedOverflow = %d, want 1", got)
	}
}

// TestOutboxBudgetPerDestination: saturation toward one destination
// must not throttle traffic toward another — the budget is per link,
// as on the transport.
func TestOutboxBudgetPerDestination(t *testing.T) {
	w := NewWorld(Config{Seed: 1, DisableJitter: true,
		OutboxHighWater: 2, OutboxLowWater: 1})
	a := w.NewNode(ids.FromString("a"), "eu", netapi.Coord{})
	b := w.NewNode(ids.FromString("b"), "eu", netapi.Coord{X: 1})
	c := w.NewNode(ids.FromString("c"), "eu", netapi.Coord{X: 2})
	got := map[string]int{}
	count := func(netapi.Ctx, ids.ID, wire.Message) { got["n"]++ }
	b.Handle("test.ping", count)
	c.Handle("test.ping", count)

	for i := 0; i < 5; i++ {
		a.Send(b.ID(), &ping{N: i})
	}
	if !a.Saturated(b.ID()) {
		t.Fatal("link a→b must saturate")
	}
	if a.Saturated(c.ID()) {
		t.Fatal("link a→c must not inherit a→b's saturation")
	}
	a.Send(c.ID(), &ping{N: 9})
	if w.Metrics().DroppedOverflow != 3 {
		t.Fatalf("DroppedOverflow = %d, want 3 (only the a→b excess)", w.Metrics().DroppedOverflow)
	}
	w.RunFor(time.Second)
	if got["n"] != 3 {
		t.Fatalf("delivered %d, want 3 (2 to b, 1 to c)", got["n"])
	}
}
