// Package simnet is a deterministic discrete-event simulation of a
// wide-area network. It is the default substrate on which the active
// architecture runs in tests, examples and benchmarks.
//
// The model: nodes live at planar coordinates (km); message latency is
// base + distance·perKm + jitter; messages may be lost with a configured
// probability; links can be severed (partitions) and nodes killed
// (churn). By default the entire world executes on a single goroutine
// driven by a vclock.Scheduler, so every run with the same seed is
// bit-identical. With Config.Shards > 1 the world is split into that
// many execution partitions (nodes round-robined over per-partition
// schedulers) and runs conservatively in BaseLatency-sized epochs across
// cores — still deterministic for a fixed seed and partition count.
package simnet

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/nodecfg"
	"github.com/gloss/active/internal/vclock"
	"github.com/gloss/active/internal/wire"
)

// Config parameterises a World.
type Config struct {
	// Common is the node-configuration block shared with the TCP
	// transport (see internal/nodecfg). The simulator consumes
	// Common.Shards as its execution-partition count and
	// Common.OutboxHighWater/OutboxLowWater as budget defaults; a
	// substrate-specific field below, when set, wins over the Common
	// value it shadows.
	nodecfg.Common
	// Seed drives all randomness (jitter, loss, node RNGs).
	Seed int64
	// BaseLatency is the fixed per-message cost. Default 1ms.
	BaseLatency time.Duration
	// LatencyPerKm adds distance-proportional delay. Default 10µs/km
	// (roughly twice the speed of light in fibre, standing in for
	// routing overhead).
	LatencyPerKm time.Duration
	// Jitter adds a uniform random delay in [0, Jitter). Default 200µs.
	Jitter time.Duration
	// DisableJitter removes the random per-message delay entirely (an
	// explicit flag, since a zero Jitter selects the default). Message
	// deadlines then collapse onto shared instants, which lets the
	// delivery batcher and the scheduler's timer wheel coalesce fan-out
	// hot paths — the configuration for million-message benchmark runs.
	DisableJitter bool
	// LossRate is the probability a message is silently dropped.
	LossRate float64
	// Codec, when non-nil, is used to account encoded message bytes in
	// Metrics (enable only when bandwidth matters). Any wire.Codec works:
	// *wire.Registry accounts the open XML format, *wire.BinaryCodec the
	// compact fast path. Registries must be fully populated before the
	// first message is sent.
	Codec wire.Codec
	// DisableMetrics turns off all traffic accounting — counters, per-kind
	// tallies and byte sizing — for hot benchmark runs where even map
	// increments per message matter. Metrics then stays zero.
	DisableMetrics bool
	// OutboxHighWater mirrors transport.Options.OutboxHighWater: a
	// per-sender, per-destination byte budget on in-flight messages.
	// Non-control sends toward a destination already holding that many
	// in-flight bytes are dropped (Metrics.DroppedOverflow); control
	// messages (wire.ControlMessage) are exempt. 0 disables budgeting
	// (the default). Sizing uses Config.Codec when installed; without
	// one every message counts one byte, making the budget a message
	// count. Budgeting is semantics, not accounting — it stays active
	// under DisableMetrics.
	OutboxHighWater int
	// OutboxLowWater is the relief threshold mirroring the transport:
	// when a saturated in-flight queue drains back to it, the
	// netapi.Backpressured drain callbacks fire. Default
	// OutboxHighWater/2.
	OutboxLowWater int
}

func (c *Config) applyDefaults() {
	if c.BaseLatency == 0 {
		c.BaseLatency = time.Millisecond
	}
	if c.LatencyPerKm == 0 {
		c.LatencyPerKm = 10 * time.Microsecond
	}
	if c.Jitter == 0 {
		c.Jitter = 200 * time.Microsecond
	}
	// The deprecated substrate-local watermark fields shadow the embedded
	// nodecfg.Common ones; adopt the Common values where the old fields
	// are unset so either spelling configures the budget.
	if c.OutboxHighWater == 0 {
		c.OutboxHighWater = c.Common.OutboxHighWater
	}
	if c.OutboxLowWater == 0 {
		c.OutboxLowWater = c.Common.OutboxLowWater
	}
	if c.OutboxHighWater > 0 && c.OutboxLowWater == 0 {
		c.OutboxLowWater = c.OutboxHighWater / 2
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
}

// Metrics aggregates world-level traffic counters.
type Metrics struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64 // loss, dead destination, filtered link, or outbox overflow
	// DroppedOverflow counts messages dropped by the byte-budget mirror
	// (Config.OutboxHighWater) — a subset of Dropped, split out so
	// E-table drop rates are attributable, mirroring the transport's
	// Stats.DroppedOverflow.
	DroppedOverflow uint64
	Bytes           uint64 // only counted when a codec is installed (Config.Codec or SetCodec)
	ByKind          map[string]uint64
	// BytesByKind splits Bytes per message kind (codec required, like
	// Bytes) so experiments can attribute traffic to a subsystem without
	// baseline-correcting overlay noise out of the global counter.
	// Messages implementing PayloadKinder (overlay route envelopes) are
	// charged to the kind they carry; ByKind frame counts stay on the
	// envelope kind.
	BytesByKind map[string]uint64
	Unhandled   uint64
	// FlushEvents counts scheduler delivery events: messages bound for
	// the same destination at the same instant share one (the simulation
	// mirror of the TCP transport's Stats.FlushWrites). Sent/Delivered
	// keep counting messages, so message-count semantics agree between
	// simulation and TCP regardless of batching.
	FlushEvents uint64
	// BatchedMsgs counts messages that rode in a delivery batch after the
	// first (the mirror of transport's Stats.BatchedFrames).
	BatchedMsgs uint64
}

// PayloadKinder is implemented by envelope messages (e.g. the overlay's
// route frame) that carry another message: BytesByKind charges the whole
// frame to the carried kind, so a storage put routed through the overlay
// counts as storage traffic, not routing traffic.
type PayloadKinder interface {
	PayloadKind() string
}

// LinkFilter decides whether a message from → to may traverse the network.
type LinkFilter func(from, to ids.ID) bool

// World is the simulated network.
//
// With one execution partition (the default) everything runs on the
// caller's goroutine, exactly as before. With Config.Shards > 1 each
// partition owns a scheduler, an RNG, a metrics block and a delivery
// batcher, and RunUntil drives them concurrently in conservative epochs
// of BaseLatency (the network's minimum delay, hence a safe lookahead):
// within an epoch a partition only executes its own nodes, every
// cross-partition message is parked in the sending partition's mailbox,
// and the epoch barrier migrates mailboxes into the destination wheels
// — in partition order, so the merge is deterministic. Topology
// mutation (NewNode, Kill, SetLinkFilter, ...) is only legal while the
// world is quiescent, i.e. outside RunUntil.
type World struct {
	cfg    Config
	codec  wire.Codec // nil-normalised view of cfg.Codec
	parts  []*worldPart
	runner *vclock.Partitioned // non-nil iff len(parts) > 1
	nodes  map[ids.ID]*Node
	order  []*Node // creation order, for deterministic iteration
	filter LinkFilter

	// injectMu guards staged: messages handed in by goroutines outside
	// the world loop (Inject/InjectMany), awaiting the next injection
	// point. Everything else in the World remains world-loop-confined.
	injectMu sync.Mutex
	staged   []stagedMsg
}

// stagedMsg is one concurrently injected message waiting to enter the
// simulation at the next injection point.
type stagedMsg struct {
	from *Node
	env  *wire.Envelope
}

// worldPart is one execution partition: the complete per-core slice of
// world state, so an epoch touches nothing shared.
type worldPart struct {
	sched *vclock.Scheduler
	rng   *rand.Rand
	// metrics counts what this partition observed (sends by resident
	// senders, deliveries to resident destinations); World.Metrics sums.
	metrics Metrics
	// batches coalesces in-flight messages bound for the same destination
	// at the same instant into one scheduler event (the simulation mirror
	// of the TCP transport's frame batching). Entries are removed when
	// the batch fires.
	batches map[batchKey]*delivBatch
	// mail holds messages sent from this partition to nodes of another,
	// in send order, awaiting the epoch barrier.
	mail []mailMsg
}

// mailMsg is one cross-partition message in flight to the epoch barrier.
// Its sender-side budget release is already scheduled on the sender's
// own wheel, so delivery owes none.
type mailMsg struct {
	dest *Node
	env  *wire.Envelope
	at   time.Duration // absolute delivery deadline; >= next epoch barrier
}

// batchKey identifies one coalesced delivery: a destination and the
// virtual instant its messages land.
type batchKey struct {
	to ids.ID
	at time.Duration
}

// delivBatch accumulates the envelopes of one coalesced delivery, in
// send order. sizes carries each envelope's accounted bytes, populated
// only when the outbox budget is enabled (release needs them back).
type delivBatch struct {
	envs  []*wire.Envelope
	sizes []int
}

// NewWorld constructs an empty world. It panics on an inverted outbox
// budget (low watermark above high), matching transport.Listen's
// rejection of the same misconfiguration.
func NewWorld(cfg Config) *World {
	cfg.applyDefaults()
	if cfg.OutboxLowWater > cfg.OutboxHighWater {
		panic(fmt.Sprintf("simnet: OutboxLowWater %d exceeds OutboxHighWater %d",
			cfg.OutboxLowWater, cfg.OutboxHighWater))
	}
	w := &World{
		cfg:   cfg,
		codec: normalizeCodec(cfg.Codec),
		nodes: make(map[ids.ID]*Node),
		parts: make([]*worldPart, cfg.Shards),
	}
	for i := range w.parts {
		seed := cfg.Seed
		if i > 0 {
			// Partition 0 keeps the plain world seed so a one-partition
			// world is bit-identical to the historical single-scheduler
			// one; the rest get decorrelated streams.
			seed ^= int64(uint64(i) * 0x9E3779B97F4A7C15)
		}
		w.parts[i] = &worldPart{
			sched:   vclock.NewScheduler(),
			rng:     rand.New(rand.NewSource(seed)),
			metrics: Metrics{ByKind: make(map[string]uint64), BytesByKind: make(map[string]uint64)},
			batches: make(map[batchKey]*delivBatch),
		}
	}
	if len(w.parts) > 1 {
		scheds := make([]*vclock.Scheduler, len(w.parts))
		for i, p := range w.parts {
			scheds[i] = p.sched
		}
		w.runner = &vclock.Partitioned{
			Scheds:    scheds,
			Lookahead: cfg.BaseLatency,
			Exchange:  w.exchange,
		}
	}
	return w
}

// exchange is the epoch-barrier callback: it migrates every partition's
// outbound mail into the destination partitions' wheels. Iteration is
// partition order then send order — deterministic given deterministic
// epochs. It runs with all partition goroutines quiescent.
func (w *World) exchange(time.Duration) {
	// Epoch barriers are also injection points: concurrently staged
	// messages enter here, while every partition goroutine is quiescent,
	// so a load generator can keep feeding a long partitioned run.
	w.drainInjected()
	for _, src := range w.parts {
		for _, m := range src.mail {
			w.enqueueAt(w.parts[m.dest.part], m.dest, m.env, -1, m.at)
		}
		src.mail = src.mail[:0]
	}
}

// SetCodec installs (or clears, with nil) the byte-accounting codec.
// Useful when the registry is only fully populated after the world is
// built — e.g. core.NewWorld registers its message types post-construction.
func (w *World) SetCodec(c wire.Codec) { w.codec = normalizeCodec(c) }

// normalizeCodec maps typed-nil codec values (a nil *wire.Registry stored
// in the interface) to plain nil so the hot path needs one comparison.
func normalizeCodec(c wire.Codec) wire.Codec {
	switch v := c.(type) {
	case nil:
		return nil
	case *wire.Registry:
		if v == nil {
			return nil
		}
	case *wire.BinaryCodec:
		if v == nil {
			return nil
		}
	}
	return c
}

// Sched exposes the underlying scheduler — partition 0's when the world
// is partitioned, so callers that drive time directly should use the
// World's own Run methods instead in that mode.
func (w *World) Sched() *vclock.Scheduler { return w.parts[0].sched }

// ExecPartitions returns the number of execution partitions (1 = the
// serial world).
func (w *World) ExecPartitions() int { return len(w.parts) }

// Now returns current virtual time. All partitions agree whenever the
// world is quiescent.
func (w *World) Now() time.Duration { return w.parts[0].sched.Now() }

// RunUntil advances virtual time to t, executing all due events.
// Messages staged by Inject/InjectMany enter at the start of the run
// (and, in a partitioned world, at every epoch barrier).
func (w *World) RunUntil(t time.Duration) {
	w.drainInjected()
	if w.runner != nil {
		w.runner.RunUntil(t)
		return
	}
	w.parts[0].sched.RunUntil(t)
}

// RunFor advances virtual time by d.
func (w *World) RunFor(d time.Duration) { w.RunUntil(w.Now() + d) }

// Metrics returns a snapshot of traffic counters, summed over execution
// partitions.
func (w *World) Metrics() Metrics {
	var m Metrics
	m.ByKind = make(map[string]uint64)
	m.BytesByKind = make(map[string]uint64)
	for _, p := range w.parts {
		m.Sent += p.metrics.Sent
		m.Delivered += p.metrics.Delivered
		m.Dropped += p.metrics.Dropped
		m.DroppedOverflow += p.metrics.DroppedOverflow
		m.Bytes += p.metrics.Bytes
		m.Unhandled += p.metrics.Unhandled
		m.FlushEvents += p.metrics.FlushEvents
		m.BatchedMsgs += p.metrics.BatchedMsgs
		for k, v := range p.metrics.ByKind {
			m.ByKind[k] += v
		}
		for k, v := range p.metrics.BytesByKind {
			m.BytesByKind[k] += v
		}
	}
	return m
}

// ResetMetrics zeroes all counters (between benchmark phases).
func (w *World) ResetMetrics() {
	for _, p := range w.parts {
		p.metrics = Metrics{ByKind: make(map[string]uint64), BytesByKind: make(map[string]uint64)}
	}
}

// SetLinkFilter installs f as the connectivity predicate (nil allows all).
func (w *World) SetLinkFilter(f LinkFilter) { w.filter = f }

// Partition splits the world into groups; messages may only flow within a
// group. Nodes not mentioned in any group are isolated. Call
// SetLinkFilter(nil) to heal.
func (w *World) Partition(groups ...[]ids.ID) {
	member := make(map[ids.ID]int)
	for gi, g := range groups {
		for _, id := range g {
			member[id] = gi
		}
	}
	w.SetLinkFilter(func(from, to ids.ID) bool {
		gf, okf := member[from]
		gt, okt := member[to]
		return okf && okt && gf == gt
	})
}

// Node is a simulated host. It implements netapi.Endpoint.
type Node struct {
	world    *World
	part     int // execution partition (creation index mod partitions)
	info     netapi.NodeInfo
	rng      *rand.Rand
	alive    bool
	handlers map[string]netapi.Handler
	pending  map[uint64]*pendingReq
	nextCorr uint64
	clock    *nodeClock
	// Outbox-budget mirror state (Config.OutboxHighWater): bytes in
	// flight per destination, the saturation latch, and the registered
	// drain callbacks — the simulation counterpart of the transport's
	// per-peer outbox.
	outBytes map[ids.ID]int
	outOver  map[ids.ID]bool
	drainFns []func(ids.ID)
}

var (
	_ netapi.Endpoint      = (*Node)(nil)
	_ netapi.Backpressured = (*Node)(nil)
)

type pendingReq struct {
	cb    netapi.ReplyFunc
	timer vclock.Timer
}

// NewNode creates a live node at coord in region. The id must be unique.
func (w *World) NewNode(id ids.ID, region string, coord netapi.Coord) *Node {
	if _, exists := w.nodes[id]; exists {
		panic(fmt.Sprintf("simnet: duplicate node id %s", id))
	}
	seed := int64(binary.BigEndian.Uint64(id[:8])) ^ w.cfg.Seed
	n := &Node{
		world:    w,
		part:     len(w.order) % len(w.parts),
		info:     netapi.NodeInfo{ID: id, Region: region, Coord: coord},
		rng:      rand.New(rand.NewSource(seed)),
		alive:    true,
		handlers: make(map[string]netapi.Handler),
		pending:  make(map[uint64]*pendingReq),
		outBytes: make(map[ids.ID]int),
		outOver:  make(map[ids.ID]bool),
	}
	n.clock = &nodeClock{node: n}
	w.nodes[id] = n
	w.order = append(w.order, n)
	return n
}

// Nodes returns all nodes in creation order (including dead ones).
func (w *World) Nodes() []*Node {
	out := make([]*Node, len(w.order))
	copy(out, w.order)
	return out
}

// Node returns the node with the given id, or nil.
func (w *World) Node(id ids.ID) *Node { return w.nodes[id] }

// ID implements netapi.Endpoint.
func (n *Node) ID() ids.ID { return n.info.ID }

// Info implements netapi.Endpoint.
func (n *Node) Info() netapi.NodeInfo { return n.info }

// Clock implements netapi.Endpoint. Callbacks scheduled through this clock
// are suppressed if the node is dead when they fire.
func (n *Node) Clock() vclock.Clock { return n.clock }

// Rand implements netapi.Endpoint.
func (n *Node) Rand() *rand.Rand { return n.rng }

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return n.alive }

// Kill crashes the node: all queued and future messages and timers for it
// are dropped until Revive.
func (n *Node) Kill() { n.alive = false }

// Revive brings a killed node back with its handlers intact. Protocol
// state is whatever it was at kill time; protocols are responsible for
// re-joining overlays.
func (n *Node) Revive() { n.alive = true }

// Handle implements netapi.Endpoint.
func (n *Node) Handle(kind string, h netapi.Handler) { n.handlers[kind] = h }

// QueuedBytes implements netapi.Backpressured: bytes this node has in
// flight toward to (messages per Config's sizing rules when no codec is
// installed). Always zero with budgeting disabled.
func (n *Node) QueuedBytes(to ids.ID) int { return n.outBytes[to] }

// Saturated implements netapi.Backpressured: the in-flight queue toward
// to crossed Config.OutboxHighWater and has not yet drained back to
// OutboxLowWater.
func (n *Node) Saturated(to ids.ID) bool { return n.outOver[to] }

// OnDrain implements netapi.Backpressured; fn runs on the world loop.
func (n *Node) OnDrain(fn func(to ids.ID)) { n.drainFns = append(n.drainFns, fn) }

// Send implements netapi.Endpoint.
func (n *Node) Send(to ids.ID, msg wire.Message) {
	env := &wire.Envelope{From: n.info.ID, To: to, Msg: msg}
	n.world.transmit(n, env)
}

// SendMany implements netapi.Multicaster: one message value is shared
// across every destination (the simulator never serialises, so sharing
// is free), and same-deadline deliveries coalesce in the world's
// delivery batcher.
//
// Like Send, SendMany is world-loop-only: the simulator deliberately
// does not implement netapi.ConcurrentSender, because its determinism
// rests on the world loop being the only scheduler mutator. (The
// broker's fan-out pool therefore stays off over simnet and the serial
// reference path runs — which is exactly what the differential tests
// compare against.) Goroutines outside the loop feed load through
// Inject/InjectMany instead.
func (n *Node) SendMany(tos []ids.ID, msg wire.Message) {
	for _, to := range tos {
		n.Send(to, msg)
	}
}

var _ netapi.Multicaster = (*Node)(nil)

// Inject stages one message from this node for transmission at the next
// injection point — the start of the next RunUntil, or in a partitioned
// world the next epoch barrier too. Unlike Send it is safe to call from
// any goroutine, including while the world is running: this is how
// concurrent load generators drive partitioned worlds. Messages from
// one goroutine enter in call order (the staging buffer is
// append-ordered); interleaving between goroutines follows their mutex
// acquisition order, so a run is deterministic given the staged
// sequence, not across racing producers.
func (n *Node) Inject(to ids.ID, msg wire.Message) {
	n.world.inject(n, []ids.ID{to}, msg)
}

// InjectMany stages msg toward every destination, preserving argument
// order, under one staging-lock acquisition — the thread-safe analogue
// of SendMany. Safe from any goroutine.
func (n *Node) InjectMany(tos []ids.ID, msg wire.Message) {
	n.world.inject(n, tos, msg)
}

func (w *World) inject(from *Node, tos []ids.ID, msg wire.Message) {
	w.injectMu.Lock()
	defer w.injectMu.Unlock()
	for _, to := range tos {
		w.staged = append(w.staged, stagedMsg{
			from: from,
			env:  &wire.Envelope{From: from.info.ID, To: to, Msg: msg},
		})
	}
}

// drainInjected moves staged messages into the simulation. Called only
// at injection points, where every partition goroutine is quiescent, so
// the plain transmit path (sender-partition state) is safe.
func (w *World) drainInjected() {
	w.injectMu.Lock()
	staged := w.staged
	w.staged = nil
	w.injectMu.Unlock()
	for _, s := range staged {
		w.transmit(s.from, s.env)
	}
}

// Request implements netapi.Endpoint.
func (n *Node) Request(to ids.ID, msg wire.Message, timeout time.Duration, cb netapi.ReplyFunc) {
	n.nextCorr++
	corr := n.nextCorr
	env := &wire.Envelope{From: n.info.ID, To: to, CorrID: corr, Msg: msg}
	p := &pendingReq{cb: cb}
	p.timer = n.clock.After(timeout, func() {
		if _, ok := n.pending[corr]; ok {
			delete(n.pending, corr)
			cb(nil, netapi.ErrTimeout)
		}
	})
	n.pending[corr] = p
	n.world.transmit(n, env)
}

// transmit queues env for delivery after the modelled latency. It runs
// on the sending node's partition: everything it touches is either that
// partition's slice of the world, the sender's own state, or the
// read-only topology.
func (w *World) transmit(from *Node, env *wire.Envelope) {
	p := w.parts[from.part]
	// One Size pass serves both byte metrics and the outbox budget.
	budget := w.cfg.OutboxHighWater > 0
	size, sized := 0, false
	if w.codec != nil && (budget || (!w.cfg.DisableMetrics && env.Msg != nil)) {
		if sz, err := w.codec.Size(env); err == nil {
			// Codec.Size is a single pass over the message (the binary
			// codec counts through a pooled scratch buffer — no throwaway
			// XML document).
			size, sized = sz, true
		}
	}
	if budget && !sized {
		// No codec (or unsizable): one byte per message, so the budget
		// degrades to a message count.
		size = 1
	}
	if !w.cfg.DisableMetrics {
		p.metrics.Sent++
		if env.Msg != nil {
			p.metrics.ByKind[env.Msg.Kind()]++
			// Byte accounting is skipped entirely without a codec.
			if sized {
				p.metrics.Bytes += uint64(size)
				// Envelope messages (overlay routing) attribute their bytes
				// to the kind they carry; frame counts stay on the envelope.
				kind := env.Msg.Kind()
				if pk, ok := env.Msg.(PayloadKinder); ok {
					if inner := pk.PayloadKind(); inner != "" {
						kind = inner
					}
				}
				p.metrics.BytesByKind[kind] += uint64(size)
			}
		}
	}
	if !from.alive {
		w.drop(p)
		return
	}
	// Outbox-budget mirror: the sender-side gate sits before the wire
	// effects (loss, partition), exactly where the transport's outbox
	// drops. Control messages are exempt, as on the transport.
	if budget && !wire.Control(env.Msg) && from.outBytes[env.To] >= w.cfg.OutboxHighWater {
		from.outOver[env.To] = true
		if !w.cfg.DisableMetrics {
			p.metrics.Dropped++
			p.metrics.DroppedOverflow++
		}
		return
	}
	if w.filter != nil && !w.filter(env.From, env.To) {
		w.drop(p)
		return
	}
	if w.cfg.LossRate > 0 && p.rng.Float64() < w.cfg.LossRate {
		w.drop(p)
		return
	}
	dest, ok := w.nodes[env.To]
	if !ok {
		w.drop(p)
		return
	}
	if budget {
		from.outBytes[env.To] += size
		if from.outBytes[env.To] >= w.cfg.OutboxHighWater {
			from.outOver[env.To] = true
		}
	}
	lat := w.latency(p, from.info.Coord, dest.info.Coord)
	at := p.sched.Now() + lat
	if dest.part == from.part {
		w.enqueueAt(p, dest, env, size, at)
		return
	}
	// Cross-partition: the message waits in this partition's mailbox
	// until the epoch barrier. Latency is at least the lookahead
	// (BaseLatency), so the deadline is at or past the barrier and the
	// destination cannot have run beyond it. The budget release mutates
	// sender state, so it is scheduled here on the sender's own wheel at
	// the delivery instant rather than ridden on the remote delivery.
	if budget {
		p.sched.After(lat, func() { w.releaseOut(env, size) })
	}
	p.mail = append(p.mail, mailMsg{dest: dest, env: env, at: at})
}

// releaseOut retires a landed message from its sender's in-flight
// budget and fires the drain callbacks when the queue falls back to the
// low watermark after saturation — the mirror of the transport outbox's
// release.
func (w *World) releaseOut(env *wire.Envelope, size int) {
	sender, ok := w.nodes[env.From]
	if !ok {
		return
	}
	left := sender.outBytes[env.To] - size
	if left > 0 {
		sender.outBytes[env.To] = left
	} else {
		delete(sender.outBytes, env.To)
		left = 0
	}
	if sender.outOver[env.To] && left <= w.cfg.OutboxLowWater {
		delete(sender.outOver, env.To)
		for _, fn := range sender.drainFns {
			fn(env.To)
		}
	}
}

// enqueueAt schedules env for delivery at the absolute instant at, on
// the destination's partition p. Messages landing at the same
// destination at the same instant share one scheduler event — with
// DisableJitter and a fixed-latency link, a whole publish fan-out to a
// node becomes a single batch, and a cross-partition message merged at
// the epoch barrier coalesces into the same batch a local send opened.
// Send order within a batch is preserved, matching the scheduler's FIFO
// tiebreak for equal times. size < 0 marks a message whose budget
// release is owed elsewhere (cross-partition mail).
//
// Known (deterministic) deviation from the unbatched scheduler: when
// sends to two destinations interleave at one instant (m1→A, m2→B,
// m3→A), A's batch runs to completion before B's, so the global order
// becomes m1,m3,m2 rather than strict send order. This needs a triple
// same-instant collision with interleaved destinations — impossible
// under default jitter in practice, and an accepted trade under
// DisableJitter where batching is the point.
func (w *World) enqueueAt(p *worldPart, dest *Node, env *wire.Envelope, size int, at time.Duration) {
	budget := w.cfg.OutboxHighWater > 0
	key := batchKey{to: env.To, at: at}
	if b, ok := p.batches[key]; ok {
		b.envs = append(b.envs, env)
		if budget {
			b.sizes = append(b.sizes, size)
		}
		if !w.cfg.DisableMetrics {
			p.metrics.BatchedMsgs++
		}
		return
	}
	b := &delivBatch{envs: []*wire.Envelope{env}}
	if budget {
		b.sizes = []int{size}
	}
	p.batches[key] = b
	p.sched.After(at-p.sched.Now(), func() {
		delete(p.batches, key)
		if !w.cfg.DisableMetrics {
			p.metrics.FlushEvents++
		}
		for i, e := range b.envs {
			// The budget releases on landing whether or not the
			// destination is still alive — the sender-side queue emptied
			// either way. Cross-partition messages (size < 0) released on
			// their sender's wheel instead.
			if budget && b.sizes[i] >= 0 {
				w.releaseOut(e, b.sizes[i])
			}
			w.deliver(p, dest, e)
		}
	})
}

// latency computes the delay between two coordinates, drawing jitter
// from the sending partition's RNG.
func (w *World) latency(p *worldPart, a, b netapi.Coord) time.Duration {
	d := w.cfg.BaseLatency + time.Duration(a.DistanceKm(b)*float64(w.cfg.LatencyPerKm))
	if !w.cfg.DisableJitter && w.cfg.Jitter > 0 {
		d += time.Duration(p.rng.Int63n(int64(w.cfg.Jitter)))
	}
	return d
}

// Latency exposes the deterministic (jitter-free) latency estimate between
// two nodes, for placement policies that reason about proximity.
func (w *World) Latency(a, b ids.ID) time.Duration {
	na, nb := w.nodes[a], w.nodes[b]
	if na == nil || nb == nil {
		return 0
	}
	return w.cfg.BaseLatency + time.Duration(na.info.Coord.DistanceKm(nb.info.Coord)*float64(w.cfg.LatencyPerKm))
}

// drop counts a dropped message unless metrics are disabled.
func (w *World) drop(p *worldPart) {
	if !w.cfg.DisableMetrics {
		p.metrics.Dropped++
	}
}

// deliver runs on the destination's partition p.
func (w *World) deliver(p *worldPart, dest *Node, env *wire.Envelope) {
	if !dest.alive {
		w.drop(p)
		return
	}
	if !w.cfg.DisableMetrics {
		p.metrics.Delivered++
	}
	if env.IsReply {
		p, ok := dest.pending[env.CorrID]
		if !ok {
			return // late reply after timeout: drop
		}
		delete(dest.pending, env.CorrID)
		p.timer.Stop()
		if env.Err != "" {
			p.cb(env.Msg, remoteError(env.Err))
			return
		}
		p.cb(env.Msg, nil)
		return
	}
	if env.Msg == nil {
		return
	}
	h, ok := dest.handlers[env.Msg.Kind()]
	if !ok {
		if !w.cfg.DisableMetrics {
			p.metrics.Unhandled++
		}
		return
	}
	h(&msgCtx{node: dest, env: env}, env.From, env.Msg)
}

type remoteError string

func (e remoteError) Error() string { return string(e) }

// msgCtx implements netapi.Ctx for a delivered message.
type msgCtx struct {
	node    *Node
	env     *wire.Envelope
	replied bool
}

func (c *msgCtx) Reply(msg wire.Message) {
	if c.env.CorrID == 0 || c.replied {
		return
	}
	c.replied = true
	reply := &wire.Envelope{
		From:    c.node.info.ID,
		To:      c.env.From,
		CorrID:  c.env.CorrID,
		IsReply: true,
		Msg:     msg,
	}
	c.node.world.transmit(c.node, reply)
}

func (c *msgCtx) ReplyErr(err error) {
	if c.env.CorrID == 0 || c.replied {
		return
	}
	c.replied = true
	reply := &wire.Envelope{
		From:    c.node.info.ID,
		To:      c.env.From,
		CorrID:  c.env.CorrID,
		IsReply: true,
		Err:     err.Error(),
	}
	c.node.world.transmit(c.node, reply)
}

// nodeClock wraps the node's partition scheduler, suppressing callbacks
// that fire after the node has been killed. Timers stay partition-local:
// a node's own future work always runs on its own partition.
type nodeClock struct {
	node *Node
}

var _ vclock.Clock = (*nodeClock)(nil)

func (c *nodeClock) Now() time.Duration {
	n := c.node
	return n.world.parts[n.part].sched.Now()
}

func (c *nodeClock) After(d time.Duration, fn func()) vclock.Timer {
	n := c.node
	return n.world.parts[n.part].sched.After(d, func() {
		if n.alive {
			fn()
		}
	})
}
