package simnet

import (
	"errors"
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/wire"
)

type ping struct {
	N int `xml:"n"`
}

func (ping) Kind() string { return "test.ping" }

type pong struct {
	N int `xml:"n"`
}

func (pong) Kind() string { return "test.pong" }

func twoNodeWorld(t *testing.T, cfg Config) (*World, *Node, *Node) {
	t.Helper()
	w := NewWorld(cfg)
	a := w.NewNode(ids.FromString("a"), "eu", netapi.Coord{X: 0, Y: 0})
	b := w.NewNode(ids.FromString("b"), "us", netapi.Coord{X: 1000, Y: 0})
	return w, a, b
}

func TestSendDeliversWithLatency(t *testing.T) {
	w, a, b := twoNodeWorld(t, Config{Seed: 1, Jitter: 1})
	var gotAt time.Duration
	var gotFrom ids.ID
	b.Handle("test.ping", func(_ netapi.Ctx, from ids.ID, msg wire.Message) {
		gotAt = w.Now()
		gotFrom = from
	})
	a.Send(b.ID(), &ping{N: 7})
	w.RunFor(time.Second)
	if gotFrom != a.ID() {
		t.Fatalf("from = %v, want %v", gotFrom, a.ID())
	}
	// base 1ms + 1000km * 10µs/km = 11ms (+ <=1ns jitter)
	want := 11 * time.Millisecond
	if gotAt < want || gotAt > want+time.Millisecond {
		t.Fatalf("delivered at %v, want ~%v", gotAt, want)
	}
}

func TestRequestReply(t *testing.T) {
	w, a, b := twoNodeWorld(t, Config{Seed: 1})
	b.Handle("test.ping", func(ctx netapi.Ctx, _ ids.ID, msg wire.Message) {
		p := msg.(*ping)
		ctx.Reply(&pong{N: p.N * 2})
	})
	var got int
	var gotErr error
	a.Request(b.ID(), &ping{N: 21}, time.Second, func(reply wire.Message, err error) {
		gotErr = err
		if err == nil {
			got = reply.(*pong).N
		}
	})
	w.RunFor(time.Second)
	if gotErr != nil {
		t.Fatalf("request error: %v", gotErr)
	}
	if got != 42 {
		t.Fatalf("reply = %d, want 42", got)
	}
}

func TestRequestTimeout(t *testing.T) {
	w, a, b := twoNodeWorld(t, Config{Seed: 1})
	// b has no handler: request must time out.
	var gotErr error
	calls := 0
	a.Request(b.ID(), &ping{N: 1}, 50*time.Millisecond, func(_ wire.Message, err error) {
		calls++
		gotErr = err
	})
	w.RunFor(time.Second)
	if calls != 1 {
		t.Fatalf("callback ran %d times, want 1", calls)
	}
	if !errors.Is(gotErr, netapi.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
}

func TestRequestErrReply(t *testing.T) {
	w, a, b := twoNodeWorld(t, Config{Seed: 1})
	b.Handle("test.ping", func(ctx netapi.Ctx, _ ids.ID, _ wire.Message) {
		ctx.ReplyErr(errors.New("no such object"))
	})
	var gotErr error
	a.Request(b.ID(), &ping{N: 1}, time.Second, func(_ wire.Message, err error) { gotErr = err })
	w.RunFor(time.Second)
	if gotErr == nil || gotErr.Error() != "no such object" {
		t.Fatalf("err = %v, want transported remote error", gotErr)
	}
}

func TestDeadNodeDropsTraffic(t *testing.T) {
	w, a, b := twoNodeWorld(t, Config{Seed: 1})
	delivered := 0
	b.Handle("test.ping", func(netapi.Ctx, ids.ID, wire.Message) { delivered++ })
	b.Kill()
	a.Send(b.ID(), &ping{})
	w.RunFor(time.Second)
	if delivered != 0 {
		t.Fatalf("dead node received a message")
	}
	b.Revive()
	a.Send(b.ID(), &ping{})
	w.RunFor(time.Second)
	if delivered != 1 {
		t.Fatalf("revived node did not receive; delivered=%d", delivered)
	}
}

func TestKillSuppressesTimers(t *testing.T) {
	w, a, _ := twoNodeWorld(t, Config{Seed: 1})
	fired := false
	a.Clock().After(10*time.Millisecond, func() { fired = true })
	a.Kill()
	w.RunFor(time.Second)
	if fired {
		t.Fatalf("timer fired on dead node")
	}
}

func TestPartition(t *testing.T) {
	w, a, b := twoNodeWorld(t, Config{Seed: 1})
	delivered := 0
	b.Handle("test.ping", func(netapi.Ctx, ids.ID, wire.Message) { delivered++ })
	w.Partition([]ids.ID{a.ID()}, []ids.ID{b.ID()})
	a.Send(b.ID(), &ping{})
	w.RunFor(time.Second)
	if delivered != 0 {
		t.Fatalf("message crossed partition")
	}
	w.SetLinkFilter(nil)
	a.Send(b.ID(), &ping{})
	w.RunFor(time.Second)
	if delivered != 1 {
		t.Fatalf("message blocked after heal; delivered=%d", delivered)
	}
}

func TestLossRate(t *testing.T) {
	w, a, b := twoNodeWorld(t, Config{Seed: 42, LossRate: 0.5})
	delivered := 0
	b.Handle("test.ping", func(netapi.Ctx, ids.ID, wire.Message) { delivered++ })
	const sent = 1000
	for i := 0; i < sent; i++ {
		a.Send(b.ID(), &ping{N: i})
	}
	w.RunFor(time.Minute)
	if delivered < 400 || delivered > 600 {
		t.Fatalf("delivered %d of %d with 50%% loss; outside [400,600]", delivered, sent)
	}
	m := w.Metrics()
	if m.Sent != sent {
		t.Fatalf("metrics.Sent = %d, want %d", m.Sent, sent)
	}
	if m.Delivered != uint64(delivered) {
		t.Fatalf("metrics.Delivered = %d, want %d", m.Delivered, delivered)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, time.Duration) {
		w := NewWorld(Config{Seed: 7, LossRate: 0.1, Jitter: time.Millisecond})
		a := w.NewNode(ids.FromString("a"), "eu", netapi.Coord{})
		b := w.NewNode(ids.FromString("b"), "us", netapi.Coord{X: 5000})
		var last time.Duration
		b.Handle("test.ping", func(ctx netapi.Ctx, _ ids.ID, _ wire.Message) {
			last = w.Now()
			ctx.Reply(&pong{})
		})
		for i := 0; i < 100; i++ {
			a.Request(b.ID(), &ping{N: i}, time.Second, func(wire.Message, error) {})
		}
		w.RunFor(10 * time.Second)
		return w.Metrics().Delivered, last
	}
	d1, t1 := run()
	d2, t2 := run()
	if d1 != d2 || t1 != t2 {
		t.Fatalf("simulation not deterministic: (%d,%v) vs (%d,%v)", d1, t1, d2, t2)
	}
}

func TestByteAccounting(t *testing.T) {
	reg := wire.NewRegistry()
	reg.Register(&ping{})
	w := NewWorld(Config{Seed: 1, Codec: reg})
	a := w.NewNode(ids.FromString("a"), "eu", netapi.Coord{})
	b := w.NewNode(ids.FromString("b"), "eu", netapi.Coord{})
	b.Handle("test.ping", func(netapi.Ctx, ids.ID, wire.Message) {})
	a.Send(b.ID(), &ping{N: 1})
	w.RunFor(time.Second)
	if w.Metrics().Bytes == 0 {
		t.Fatalf("no bytes accounted with codec configured")
	}
}

func TestUnhandledCounted(t *testing.T) {
	w, a, b := twoNodeWorld(t, Config{Seed: 1})
	a.Send(b.ID(), &ping{})
	w.RunFor(time.Second)
	if w.Metrics().Unhandled != 1 {
		t.Fatalf("Unhandled = %d, want 1", w.Metrics().Unhandled)
	}
}

func TestDeliveryBatchingCoalesces(t *testing.T) {
	// Without jitter every message of a burst lands at the same instant
	// and the same destination: one scheduler flush carries them all.
	w, a, b := twoNodeWorld(t, Config{Seed: 1, DisableJitter: true})
	order := make([]int, 0, 16)
	b.Handle("test.ping", func(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
		order = append(order, msg.(*ping).N)
	})
	const burst = 16
	for i := 0; i < burst; i++ {
		a.Send(b.ID(), &ping{N: i})
	}
	w.RunFor(time.Second)
	m := w.Metrics()
	if m.Delivered != burst || m.Sent != burst {
		t.Fatalf("Sent/Delivered = %d/%d, want %d/%d (message counts must not change)", m.Sent, m.Delivered, burst, burst)
	}
	if m.FlushEvents != 1 {
		t.Fatalf("FlushEvents = %d, want 1 (one batch for a same-deadline burst)", m.FlushEvents)
	}
	if m.BatchedMsgs != burst-1 {
		t.Fatalf("BatchedMsgs = %d, want %d", m.BatchedMsgs, burst-1)
	}
	for i, n := range order {
		if n != i {
			t.Fatalf("batched delivery reordered: %v", order)
		}
	}
}

func TestJitterKeepsBatchesApart(t *testing.T) {
	// With jitter on, deadlines are (almost surely) distinct: batching
	// degenerates to one flush per message and semantics are unchanged.
	w, a, b := twoNodeWorld(t, Config{Seed: 1})
	delivered := 0
	b.Handle("test.ping", func(netapi.Ctx, ids.ID, wire.Message) { delivered++ })
	const burst = 16
	for i := 0; i < burst; i++ {
		a.Send(b.ID(), &ping{N: i})
	}
	w.RunFor(time.Second)
	if delivered != burst {
		t.Fatalf("delivered %d of %d", delivered, burst)
	}
	m := w.Metrics()
	if m.FlushEvents+m.BatchedMsgs != burst {
		t.Fatalf("flush accounting broken: FlushEvents=%d BatchedMsgs=%d", m.FlushEvents, m.BatchedMsgs)
	}
}

func TestSendManyShares(t *testing.T) {
	w := NewWorld(Config{Seed: 3, DisableJitter: true})
	a := w.NewNode(ids.FromString("many-a"), "eu", netapi.Coord{})
	msg := &ping{N: 9}
	var tos []ids.ID
	got := 0
	for i := 0; i < 4; i++ {
		n := w.NewNode(ids.FromString(string(rune('b'+i))), "eu", netapi.Coord{X: 10})
		tos = append(tos, n.ID())
		n.Handle("test.ping", func(_ netapi.Ctx, _ ids.ID, m wire.Message) {
			if m.(*ping) != msg {
				t.Errorf("multicast did not share the message value")
			}
			got++
		})
	}
	a.SendMany(tos, msg)
	w.RunFor(time.Second)
	if got != 4 {
		t.Fatalf("delivered %d of 4 multicast copies", got)
	}
}

func TestKillMidBatchDropsRemainder(t *testing.T) {
	// A handler killing its own node while a batch drains: the already-
	// running flush must drop the remaining messages, same as the
	// unbatched path would at that virtual instant.
	w, a, b := twoNodeWorld(t, Config{Seed: 1, DisableJitter: true})
	delivered := 0
	b.Handle("test.ping", func(netapi.Ctx, ids.ID, wire.Message) {
		delivered++
		b.Kill()
	})
	for i := 0; i < 8; i++ {
		a.Send(b.ID(), &ping{N: i})
	}
	w.RunFor(time.Second)
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (kill must stop the batch)", delivered)
	}
	if m := w.Metrics(); m.Dropped != 7 {
		t.Fatalf("Dropped = %d, want 7", m.Dropped)
	}
}

func TestLatencyEstimate(t *testing.T) {
	w, a, b := twoNodeWorld(t, Config{Seed: 1})
	want := time.Millisecond + 10*time.Millisecond // base + 1000km*10µs
	if got := w.Latency(a.ID(), b.ID()); got != want {
		t.Fatalf("Latency = %v, want %v", got, want)
	}
}
