package simnet

import (
	"sync"
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/nodecfg"
	"github.com/gloss/active/internal/wire"
)

// TestInjectEntersAtRunStart: a message staged while the world is
// quiescent is transmitted at the top of the next RunUntil and delivered
// with the modelled latency.
func TestInjectEntersAtRunStart(t *testing.T) {
	w, a, b := twoNodeWorld(t, Config{Seed: 1})
	var got int
	b.Handle("test.ping", func(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
		got = msg.(*ping).N
	})
	a.Inject(b.ID(), &ping{N: 41})
	w.RunFor(time.Second)
	if got != 41 {
		t.Fatalf("injected message not delivered: got %d", got)
	}
}

// TestInjectManyConcurrentProducers drives InjectMany from several
// goroutines against a PARTITIONED world while it runs, interleaved with
// RunUntil epochs. Asserts: no message lost (per-destination receive
// counts exact), per-producer FIFO holds at each destination, and the
// metrics account for every injected message.
func TestInjectManyConcurrentProducers(t *testing.T) {
	w := NewWorld(Config{Common: nodecfg.Common{Shards: 3}, Seed: 7, DisableJitter: true})
	src := w.NewNode(ids.FromString("inj-src"), "eu", netapi.Coord{})
	var sinks []*Node
	for _, name := range []string{"inj-a", "inj-b", "inj-c", "inj-d"} {
		sinks = append(sinks, w.NewNode(ids.FromString(name), "us", netapi.Coord{X: 500}))
	}

	type rec struct {
		mu   sync.Mutex
		seqs map[int][]int // producer -> arrival-order sequence numbers
		n    int
	}
	recs := make(map[ids.ID]*rec)
	var tos []ids.ID
	for _, s := range sinks {
		r := &rec{seqs: make(map[int][]int)}
		recs[s.ID()] = r
		tos = append(tos, s.ID())
		sid := s.ID()
		s.Handle("test.ping", func(_ netapi.Ctx, _ ids.ID, msg wire.Message) {
			// World-loop callback: serial per node, but lock anyway — the
			// final assertions read from the test goroutine.
			p := msg.(*ping)
			r := recs[sid]
			r.mu.Lock()
			r.seqs[p.N/1000] = append(r.seqs[p.N/1000], p.N%1000)
			r.n++
			r.mu.Unlock()
		})
	}

	const producers = 4
	const perProducer = 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				src.InjectMany(tos, &ping{N: p*1000 + i})
			}
		}(p)
	}

	// Run the world concurrently with the producers: epoch barriers are
	// injection points, so staged messages flow in while time advances.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			w.RunFor(50 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	// One final run picks up anything staged after the last epoch.
	w.RunFor(time.Second)

	want := producers * perProducer
	for id, r := range recs {
		r.mu.Lock()
		if r.n != want {
			t.Fatalf("sink %s received %d messages, want %d", id.Short(), r.n, want)
		}
		for p, seqs := range r.seqs {
			for i := 1; i < len(seqs); i++ {
				if seqs[i] != seqs[i-1]+1 {
					t.Fatalf("sink %s: producer %d FIFO violated: %d after %d",
						id.Short(), p, seqs[i], seqs[i-1])
				}
			}
		}
		r.mu.Unlock()
	}
	m := w.Metrics()
	if m.Delivered != uint64(want*len(sinks)) {
		t.Fatalf("Metrics.Delivered = %d, want %d", m.Delivered, want*len(sinks))
	}
}

// TestSimnetDoesNotAdvertiseConcurrentSends pins the design decision
// that keeps simulation deterministic: simnet nodes must NOT report the
// ConcurrentSend capability, so the broker's fan-out pool stays off and
// every existing simulation remains on the serial reference path.
func TestSimnetDoesNotAdvertiseConcurrentSends(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	n := w.NewNode(ids.FromString("caps"), "eu", netapi.Coord{})
	if netapi.Capabilities(n).ConcurrentSend {
		t.Fatal("simnet.Node must not advertise ConcurrentSend")
	}
}
