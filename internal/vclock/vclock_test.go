package vclock

import (
	"testing"
	"time"
)

func TestOrderAndTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.RunUntil(time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", got)
	}
	if s.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s (advanced to horizon)", s.Now())
	}
}

func TestFIFOTiebreak(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.RunFor(time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events ran out of order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var fired []time.Duration
	s.After(time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.After(time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.RunUntil(time.Second)
	if len(fired) != 2 {
		t.Fatalf("want 2 events, got %d", len(fired))
	}
	if fired[0] != time.Millisecond || fired[1] != 2*time.Millisecond {
		t.Fatalf("fire times = %v", fired)
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler()
	ran := false
	tm := s.After(time.Millisecond, func() { ran = true })
	if !tm.Stop() {
		t.Fatalf("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatalf("second Stop should report false")
	}
	s.RunFor(time.Second)
	if ran {
		t.Fatalf("stopped timer still ran")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.After(2*time.Second, func() { ran = true })
	s.RunUntil(time.Second)
	if ran {
		t.Fatalf("event beyond horizon ran")
	}
	if s.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", s.Now())
	}
	s.RunUntil(3 * time.Second)
	if !ran {
		t.Fatalf("event within extended horizon did not run")
	}
}

func TestDrain(t *testing.T) {
	s := NewScheduler()
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		if count < 5 {
			s.After(time.Millisecond, reschedule)
		}
	}
	s.After(0, reschedule)
	if !s.Drain(100) {
		t.Fatalf("Drain did not finish a finite chain")
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	// Infinite chain hits the step bound.
	var forever func()
	forever = func() { s.After(time.Millisecond, forever) }
	s.After(0, forever)
	if s.Drain(50) {
		t.Fatalf("Drain of infinite chain should report false")
	}
}

func TestNegativeDelay(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.After(-time.Second, func() { ran = true })
	s.RunFor(0)
	if !ran {
		t.Fatalf("negative delay should run immediately")
	}
}

func TestSameDeadlineSharesBucket(t *testing.T) {
	s := NewScheduler()
	const n = 1000
	ran := 0
	for i := 0; i < n; i++ {
		s.After(5*time.Millisecond, func() { ran++ })
	}
	if got := len(s.queue); got != 1 {
		t.Fatalf("queue holds %d buckets for one deadline, want 1", got)
	}
	if got := s.Pending(); got != n {
		t.Fatalf("Pending = %d, want %d", got, n)
	}
	s.RunFor(time.Second)
	if ran != n {
		t.Fatalf("ran %d of %d same-deadline events", ran, n)
	}
}

func TestRescheduleAtSameInstantRunsAfter(t *testing.T) {
	// A callback scheduling another event at its own instant (After(0))
	// must see it run later in the same step sequence, at the same time.
	s := NewScheduler()
	var got []int
	s.After(time.Millisecond, func() {
		got = append(got, 1)
		s.After(0, func() { got = append(got, 3) })
	})
	s.After(time.Millisecond, func() { got = append(got, 2) })
	s.RunFor(time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
	if s.Steps() != 3 {
		t.Fatalf("Steps = %d, want 3", s.Steps())
	}
}

func TestStopWithinBucket(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.After(time.Millisecond, func() { got = append(got, 0) })
	tm := s.After(time.Millisecond, func() { got = append(got, 1) })
	s.After(time.Millisecond, func() { got = append(got, 2) })
	tm.Stop()
	s.RunFor(time.Second)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("got %v, want [0 2]", got)
	}
}

func TestBucketReuseKeepsDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := NewScheduler()
		var fired []time.Duration
		var tick func()
		n := 0
		tick = func() {
			fired = append(fired, s.Now())
			n++
			if n < 50 {
				// Alternate between repeating and fresh deadlines so
				// buckets retire and get recycled mid-run.
				s.After(time.Duration(n%3)*time.Millisecond, tick)
			}
		}
		s.After(0, tick)
		s.RunFor(time.Second)
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPending(t *testing.T) {
	s := NewScheduler()
	t1 := s.After(time.Millisecond, func() {})
	s.After(time.Millisecond, func() {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	t1.Stop()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending after stop = %d, want 1", got)
	}
}
