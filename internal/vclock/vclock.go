// Package vclock provides the virtual clock and discrete-event scheduler
// that drive the simulated world. All protocol code in this repository is
// written against the Clock interface, so the same code runs either under
// the deterministic simulator (Scheduler) or against wall-clock time
// (Real, in internal/transport).
package vclock

import (
	"container/heap"
	"time"
)

// Clock supplies time and timer scheduling to protocol code.
//
// Implementations must execute callbacks serially with respect to the
// component that scheduled them; under the simulator the entire world is
// serialised, which makes protocol code lock-free and deterministic.
type Clock interface {
	// Now returns the current virtual (or wall) time measured from an
	// arbitrary epoch.
	Now() time.Duration
	// After schedules fn to run once, d from now. It returns a Timer
	// that can cancel the callback before it fires.
	After(d time.Duration, fn func()) Timer
}

// Timer is a handle to a scheduled callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the callback was
	// prevented from running (false if it already ran or was stopped).
	Stop() bool
}

// item is a scheduled event in the simulator's priority queue.
type item struct {
	at      time.Duration
	seq     uint64 // FIFO tiebreak for equal times: determinism
	fn      func()
	stopped bool
	index   int
}

type eventQueue []*item

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	it := x.(*item)
	it.index = len(*q)
	*q = append(*q, it)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Scheduler is a deterministic discrete-event scheduler. It is not safe
// for concurrent use: the entire simulated world runs on one goroutine.
type Scheduler struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
	steps uint64
}

// NewScheduler returns a scheduler positioned at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

var _ Clock = (*Scheduler)(nil)

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// After schedules fn at now+d. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	it := &item{at: s.now + d, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, it)
	return (*schedTimer)(it)
}

type schedTimer item

func (t *schedTimer) Stop() bool {
	if t.stopped || t.fn == nil {
		return false
	}
	t.stopped = true
	return true
}

// Pending returns the number of scheduled, unstopped events.
func (s *Scheduler) Pending() int {
	n := 0
	for _, it := range s.queue {
		if !it.stopped {
			n++
		}
	}
	return n
}

// Steps returns the number of events executed so far.
func (s *Scheduler) Steps() uint64 { return s.steps }

// step executes the earliest event. It reports false when the queue is empty.
func (s *Scheduler) step() bool {
	for s.queue.Len() > 0 {
		it := heap.Pop(&s.queue).(*item)
		if it.stopped {
			continue
		}
		s.now = it.at
		fn := it.fn
		it.fn = nil
		s.steps++
		fn()
		return true
	}
	return false
}

// RunUntil executes events in order until virtual time would exceed t or
// no events remain. The clock is left at min(t, time of last event run)
// — advanced to t if the queue drains earlier.
func (s *Scheduler) RunUntil(t time.Duration) {
	for s.queue.Len() > 0 {
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > t {
			break
		}
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the clock by d, executing all events due in the window.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// Drain executes events until none remain or maxSteps events have run.
// It reports whether the queue was fully drained. Protocols with
// periodic timers never drain; use RunUntil for those worlds.
func (s *Scheduler) Drain(maxSteps uint64) bool {
	for i := uint64(0); i < maxSteps; i++ {
		if !s.step() {
			return true
		}
	}
	return s.queue.Len() == 0
}

func (s *Scheduler) peek() *item {
	for s.queue.Len() > 0 {
		it := s.queue[0]
		if !it.stopped {
			return it
		}
		heap.Pop(&s.queue)
	}
	return nil
}
