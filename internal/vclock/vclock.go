// Package vclock provides the virtual clock and discrete-event scheduler
// that drive the simulated world. All protocol code in this repository is
// written against the Clock interface, so the same code runs either under
// the deterministic simulator (Scheduler) or against wall-clock time
// (Real, in internal/transport).
package vclock

import (
	"container/heap"
	"time"
)

// Clock supplies time and timer scheduling to protocol code.
//
// Implementations must execute callbacks serially with respect to the
// component that scheduled them; under the simulator the entire world is
// serialised, which makes protocol code lock-free and deterministic.
type Clock interface {
	// Now returns the current virtual (or wall) time measured from an
	// arbitrary epoch.
	Now() time.Duration
	// After schedules fn to run once, d from now. It returns a Timer
	// that can cancel the callback before it fires.
	After(d time.Duration, fn func()) Timer
}

// Timer is a handle to a scheduled callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the callback was
	// prevented from running (false if it already ran or was stopped).
	Stop() bool
}

// item is one scheduled callback inside a bucket.
type item struct {
	fn      func()
	stopped bool
}

// bucket groups every event scheduled for one instant. The heap orders
// buckets, not events, so scheduling N same-deadline deliveries (a
// publish fan-out under fixed latency) costs one heap operation total
// plus N slice appends — the timer-wheel analogue for a discrete-event
// world where deadlines repeat exactly rather than falling into coarse
// slots.
type bucket struct {
	at    time.Duration
	seq   uint64 // creation order; heap tiebreak if equal times ever coexist
	items []*item
	next  int // index of the first unexecuted item
	index int // heap position
}

type bucketQueue []*bucket

func (q bucketQueue) Len() int { return len(q) }

func (q bucketQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q bucketQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *bucketQueue) Push(x any) {
	b := x.(*bucket)
	b.index = len(*q)
	*q = append(*q, b)
}

func (q *bucketQueue) Pop() any {
	old := *q
	n := len(old)
	b := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return b
}

// Scheduler is a deterministic discrete-event scheduler. It is not safe
// for concurrent use: the entire simulated world runs on one goroutine.
//
// Internally it is a bucketed timer wheel: events scheduled for the same
// virtual instant share one bucket and the priority queue holds buckets,
// so hot fan-out workloads (thousands of messages due at one deadline)
// pay O(1) amortised scheduling instead of O(log n) heap churn each.
// Within a bucket events run in scheduling order, which preserves the
// original global FIFO tiebreak for equal times exactly.
type Scheduler struct {
	now     time.Duration
	seq     uint64 // bucket creation counter
	buckets map[time.Duration]*bucket
	queue   bucketQueue
	steps   uint64
	free    []*bucket // drained buckets recycled to keep the hot path alloc-light
}

// NewScheduler returns a scheduler positioned at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{buckets: make(map[time.Duration]*bucket)}
}

var _ Clock = (*Scheduler)(nil)

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// After schedules fn at now+d. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	at := s.now + d
	b, ok := s.buckets[at]
	if !ok {
		if n := len(s.free); n > 0 {
			b = s.free[n-1]
			s.free[n-1] = nil
			s.free = s.free[:n-1]
			b.at, b.items, b.next = at, b.items[:0], 0
		} else {
			b = &bucket{at: at}
		}
		b.seq = s.seq
		s.seq++
		s.buckets[at] = b
		heap.Push(&s.queue, b)
	}
	it := &item{fn: fn}
	b.items = append(b.items, it)
	return (*schedTimer)(it)
}

type schedTimer item

func (t *schedTimer) Stop() bool {
	if t.stopped || t.fn == nil {
		return false
	}
	t.stopped = true
	return true
}

// Pending returns the number of scheduled, unstopped events.
func (s *Scheduler) Pending() int {
	n := 0
	for _, b := range s.buckets {
		for _, it := range b.items[b.next:] {
			if !it.stopped {
				n++
			}
		}
	}
	return n
}

// Steps returns the number of events executed so far.
func (s *Scheduler) Steps() uint64 { return s.steps }

// top returns the earliest bucket that still holds unexecuted items,
// retiring drained buckets along the way.
func (s *Scheduler) top() *bucket {
	for len(s.queue) > 0 {
		b := s.queue[0]
		if b.next < len(b.items) {
			return b
		}
		s.retire(b)
	}
	return nil
}

// retire removes a fully drained bucket from the queue and the wheel and
// recycles its storage.
func (s *Scheduler) retire(b *bucket) {
	heap.Remove(&s.queue, b.index)
	delete(s.buckets, b.at)
	for i := range b.items {
		b.items[i] = nil
	}
	if len(s.free) < 64 {
		s.free = append(s.free, b)
	}
}

// step executes the earliest event. It reports false when the queue is empty.
func (s *Scheduler) step() bool {
	for {
		b := s.top()
		if b == nil {
			return false
		}
		for b.next < len(b.items) {
			it := b.items[b.next]
			b.items[b.next] = nil
			b.next++
			if b.next == len(b.items) {
				// Retire before running: a callback scheduling at this
				// same instant must land in a fresh bucket that runs next.
				s.retire(b)
			}
			if it.stopped {
				continue
			}
			s.now = b.at
			fn := it.fn
			it.fn = nil
			s.steps++
			fn()
			return true
		}
	}
}

// RunUntil executes events in order until virtual time would exceed t or
// no events remain. The clock is left at min(t, time of last event run)
// — advanced to t if the queue drains earlier.
func (s *Scheduler) RunUntil(t time.Duration) {
	for {
		next, ok := s.peekAt()
		if !ok || next > t {
			break
		}
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the clock by d, executing all events due in the window.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// RunBefore executes events strictly before t, then advances the clock
// to t. It is the epoch primitive of partitioned execution: events due
// exactly at an epoch boundary run in the next epoch, after the
// boundary's cross-partition exchange.
func (s *Scheduler) RunBefore(t time.Duration) {
	for {
		next, ok := s.peekAt()
		if !ok || next >= t {
			break
		}
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// Drain executes events until none remain or maxSteps events have run.
// It reports whether the queue was fully drained. Protocols with
// periodic timers never drain; use RunUntil for those worlds.
func (s *Scheduler) Drain(maxSteps uint64) bool {
	for i := uint64(0); i < maxSteps; i++ {
		if !s.step() {
			return true
		}
	}
	_, ok := s.peekAt()
	return !ok
}

// peekAt returns the deadline of the earliest unstopped event. Stopped
// items at the front of the wheel are discarded on the way (they would
// be skipped by step anyway).
func (s *Scheduler) peekAt() (time.Duration, bool) {
	for {
		b := s.top()
		if b == nil {
			return 0, false
		}
		for b.next < len(b.items) {
			if !b.items[b.next].stopped {
				return b.at, true
			}
			b.items[b.next] = nil
			b.next++
		}
	}
}
