package vclock

import (
	"sync"
	"time"
)

// Partitioned coordinates several independent Schedulers with the
// classic conservative (lookahead-based) parallel discrete-event
// discipline: virtual time advances in epochs of Lookahead, every
// partition executes its own wheel for one epoch on its own goroutine,
// and at each epoch boundary the Exchange callback runs on the caller's
// goroutine to migrate cross-partition events.
//
// Correctness rests on one invariant the caller must uphold: an event
// produced in one partition for another is always scheduled at least
// Lookahead after the virtual instant that produced it. Then nothing a
// peer does during an epoch can affect this epoch — every
// cross-partition effect lands at or after the next boundary, where
// Exchange installs it before any partition proceeds. Within a
// partition ordering is exactly the serial Scheduler's; across
// partitions, determinism follows from Exchange iterating its mailboxes
// in a deterministic order.
type Partitioned struct {
	Scheds    []*Scheduler
	Lookahead time.Duration
	// Exchange is called with each epoch boundary after every partition
	// has advanced to it (all partition goroutines are quiescent). It may
	// schedule onto any partition's wheel; deadlines must be >= boundary.
	// Optional.
	Exchange func(boundary time.Duration)
}

// RunUntil advances every partition to t, inclusive, epoch by epoch.
// Like Scheduler.RunUntil, events due exactly at t are executed.
func (p *Partitioned) RunUntil(t time.Duration) {
	if p.Lookahead <= 0 {
		panic("vclock: Partitioned requires positive Lookahead")
	}
	cur := p.Scheds[0].Now()
	for cur < t {
		boundary := cur + p.Lookahead
		if boundary > t {
			boundary = t
		}
		p.each(func(s *Scheduler) { s.RunBefore(boundary) })
		if p.Exchange != nil {
			p.Exchange(boundary)
		}
		cur = boundary
	}
	// Events due exactly at t run last, matching serial RunUntil's
	// inclusive bound; anything they emit cross-partition is due >= t +
	// Lookahead and is parked by Exchange for a later run.
	p.each(func(s *Scheduler) { s.RunUntil(t) })
	if p.Exchange != nil {
		p.Exchange(t)
	}
}

// each runs f over every partition concurrently and waits for all.
// The WaitGroup barrier gives Exchange a happens-before edge over every
// partition's epoch work.
func (p *Partitioned) each(f func(*Scheduler)) {
	if len(p.Scheds) == 1 {
		f(p.Scheds[0])
		return
	}
	var wg sync.WaitGroup
	for _, s := range p.Scheds {
		wg.Add(1)
		go func(s *Scheduler) {
			defer wg.Done()
			f(s)
		}(s)
	}
	wg.Wait()
}

// Pending sums pending events across partitions.
func (p *Partitioned) Pending() int {
	n := 0
	for _, s := range p.Scheds {
		n += s.Pending()
	}
	return n
}

// Steps sums executed events across partitions.
func (p *Partitioned) Steps() uint64 {
	n := uint64(0)
	for _, s := range p.Scheds {
		n += s.Steps()
	}
	return n
}
