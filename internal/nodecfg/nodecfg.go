// Package nodecfg holds the node-level configuration shared by every
// substrate a node is built from. The knobs that used to be duplicated
// across transport.Options, simnet.Config and pubsub.Options — wire
// codec, outbox watermarks, per-peer budgets, shard/partition counts —
// live here once, and the substrate option structs embed Common so
// cmd/activenode and core.WorldConfig thread one struct instead of
// copying fields.
//
// Precedence: a substrate's own (older, deprecated-but-working) field
// always wins over the embedded Common value, so existing callers keep
// their exact behaviour; Common fills only fields the caller left zero.
package nodecfg

import (
	"fmt"
	"time"

	"github.com/gloss/active/internal/ids"
)

// PeerBudget overrides the outbox watermarks for one peer — per-link-class
// tuning (generous budgets toward LAN brokers, tight ones toward
// constrained WAN edges). Return high <= 0 to keep the node-wide
// defaults; low <= 0 defaults to high/2.
type PeerBudget func(peer ids.ID) (high, low int)

// Common is the substrate-independent slice of a node's configuration.
// transport.Options, simnet.Config and core.NodeConfig embed it; a zero
// Common changes nothing anywhere.
type Common struct {
	// Codec is the preferred wire codec name ("xml" or "binary"). The
	// TCP transport uses it for hello negotiation; core resolves it to
	// the simulator's byte-accounting codec.
	Codec string
	// OutboxHighWater is the per-destination send-queue byte budget;
	// non-control sends above it are dropped. Zero keeps the
	// substrate's default (1 MiB on the transport, disabled in simnet).
	OutboxHighWater int
	// OutboxLowWater is the backpressure-relief watermark. Zero
	// defaults to OutboxHighWater/2.
	OutboxLowWater int
	// PeerBudget, when non-nil, overrides the watermarks per peer.
	PeerBudget PeerBudget
	// Shards sets the parallelism degree of the node's sharded
	// subsystems: the broker's predicate-index shard count
	// (pubsub.Options.MatchShards) and the simulated world's execution
	// partitions (simnet). Zero selects each subsystem's default; 1
	// selects the serial reference paths.
	Shards int
	// FanoutWorkers sets the broker's post-match publish parallelism
	// (pubsub.Options.FanoutWorkers): the pool of destination-sticky
	// workers running SendMany group assembly, shared-body encode and
	// endpoint sends off the actor loop. Zero falls back to Shards,
	// then to the subsystem default; 1 selects the serial reference
	// path. Only effective over endpoints that advertise concurrent
	// sends (the TCP transport); over simnet the broker stays serial
	// regardless, preserving simulation determinism.
	FanoutWorkers int
	// LegacyOutbox restores the fixed frame-count outbox on substrates
	// that have one (the TCP transport) instead of the byte-budgeted
	// queue. The legacy queue has no byte accounting, so it cannot
	// coexist with parallel fan-out: Validate rejects the combination.
	LegacyOutbox bool
	// KBWriter is the node's writer identity in knowledge-plane version
	// vectors (knowledge.Options.Writer). Empty defaults to the node's
	// endpoint ID; it must be unique per writer node.
	KBWriter string
	// KBGossipInterval is the knowledge anti-entropy period
	// (knowledge.Options.GossipInterval). Zero disables gossip; objects
	// then converge only through fetch read-repair.
	KBGossipInterval time.Duration
	// KBSiblingCap bounds concurrent sibling histories per knowledge
	// object before they are force-merged (knowledge.Options.SiblingCap).
	// Zero selects the subsystem default (8).
	KBSiblingCap int
}

// Merge fills c's zero fields from o and returns the result: the
// receiver (the outer, possibly deprecated configuration) wins, o (the
// embedded Common, or a world-level default) fills the gaps.
func (c Common) Merge(o Common) Common {
	if c.Codec == "" {
		c.Codec = o.Codec
	}
	if c.OutboxHighWater == 0 {
		c.OutboxHighWater = o.OutboxHighWater
	}
	if c.OutboxLowWater == 0 {
		c.OutboxLowWater = o.OutboxLowWater
	}
	if c.PeerBudget == nil {
		c.PeerBudget = o.PeerBudget
	}
	if c.Shards == 0 {
		c.Shards = o.Shards
	}
	if c.FanoutWorkers == 0 {
		c.FanoutWorkers = o.FanoutWorkers
	}
	if !c.LegacyOutbox {
		c.LegacyOutbox = o.LegacyOutbox
	}
	if c.KBWriter == "" {
		c.KBWriter = o.KBWriter
	}
	if c.KBGossipInterval == 0 {
		c.KBGossipInterval = o.KBGossipInterval
	}
	if c.KBSiblingCap == 0 {
		c.KBSiblingCap = o.KBSiblingCap
	}
	return c
}

// Validate rejects values no substrate could accept: an unknown codec
// name, a negative or inverted watermark pair, or the legacy outbox
// combined with parallel fan-out. Zero values always pass.
func (c Common) Validate() error {
	if c.Codec != "" && c.Codec != "xml" && c.Codec != "binary" {
		return fmt.Errorf("nodecfg: unknown codec %q (want \"xml\" or \"binary\")", c.Codec)
	}
	if c.OutboxHighWater < 0 {
		return fmt.Errorf("nodecfg: negative OutboxHighWater %d", c.OutboxHighWater)
	}
	if c.OutboxLowWater < 0 {
		return fmt.Errorf("nodecfg: negative OutboxLowWater %d", c.OutboxLowWater)
	}
	if c.OutboxLowWater > c.OutboxHighWater {
		return fmt.Errorf("nodecfg: OutboxLowWater %d exceeds OutboxHighWater %d",
			c.OutboxLowWater, c.OutboxHighWater)
	}
	// The legacy frame-cap outbox predates concurrent producers: it has
	// no byte accounting, so shed decisions snapshotted by the fan-out
	// pool would be meaningless over it.
	if c.LegacyOutbox && c.FanoutWorkers > 1 {
		return fmt.Errorf("nodecfg: FanoutWorkers %d requires the byte-budgeted outbox; drop LegacyOutbox or use FanoutWorkers 1",
			c.FanoutWorkers)
	}
	if c.Shards < 0 {
		return fmt.Errorf("nodecfg: negative Shards %d", c.Shards)
	}
	if c.FanoutWorkers < 0 {
		return fmt.Errorf("nodecfg: negative FanoutWorkers %d", c.FanoutWorkers)
	}
	if c.KBSiblingCap < 0 {
		return fmt.Errorf("nodecfg: KBSiblingCap %d; a sibling cap must be at least 1 (0 selects the default)",
			c.KBSiblingCap)
	}
	return nil
}
