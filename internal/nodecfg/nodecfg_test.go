package nodecfg

import (
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
)

func TestMergeOuterWins(t *testing.T) {
	outer := Common{Codec: "xml", OutboxHighWater: 100, KBWriter: "w-outer"}
	inner := Common{Codec: "binary", OutboxHighWater: 999, OutboxLowWater: 40, Shards: 4, FanoutWorkers: 6,
		KBWriter: "w-inner", KBGossipInterval: 3 * time.Second, KBSiblingCap: 5}
	got := outer.Merge(inner)
	if got.Codec != "xml" {
		t.Fatalf("Codec = %q, want outer %q", got.Codec, "xml")
	}
	if got.OutboxHighWater != 100 {
		t.Fatalf("OutboxHighWater = %d, want outer 100", got.OutboxHighWater)
	}
	if got.OutboxLowWater != 40 {
		t.Fatalf("OutboxLowWater = %d, want filled 40", got.OutboxLowWater)
	}
	if got.Shards != 4 {
		t.Fatalf("Shards = %d, want filled 4", got.Shards)
	}
	if got.FanoutWorkers != 6 {
		t.Fatalf("FanoutWorkers = %d, want filled 6", got.FanoutWorkers)
	}
	if got.KBWriter != "w-outer" {
		t.Fatalf("KBWriter = %q, want outer %q", got.KBWriter, "w-outer")
	}
	if got.KBGossipInterval != 3*time.Second {
		t.Fatalf("KBGossipInterval = %v, want filled 3s", got.KBGossipInterval)
	}
	if got.KBSiblingCap != 5 {
		t.Fatalf("KBSiblingCap = %d, want filled 5", got.KBSiblingCap)
	}
}

func TestMergeFillsPeerBudget(t *testing.T) {
	inner := Common{PeerBudget: func(ids.ID) (int, int) { return 7, 3 }}
	got := Common{}.Merge(inner)
	if got.PeerBudget == nil {
		t.Fatal("PeerBudget not filled from inner")
	}
	if h, l := got.PeerBudget(ids.ID{}); h != 7 || l != 3 {
		t.Fatalf("PeerBudget = (%d,%d), want (7,3)", h, l)
	}
}

func TestValidate(t *testing.T) {
	if err := (Common{}).Validate(); err != nil {
		t.Fatalf("zero Common must validate: %v", err)
	}
	if err := (Common{Codec: "binary", OutboxHighWater: 10, OutboxLowWater: 5, Shards: 8, FanoutWorkers: 4}).Validate(); err != nil {
		t.Fatalf("valid Common rejected: %v", err)
	}
	if err := (Common{LegacyOutbox: true, FanoutWorkers: 1}).Validate(); err != nil {
		t.Fatalf("legacy outbox with serial fan-out rejected: %v", err)
	}
	for _, bad := range []Common{
		{Codec: "gob"},
		{OutboxHighWater: 1, OutboxLowWater: 2},
		{OutboxHighWater: -1},
		{OutboxLowWater: -3},
		{Shards: -1},
		{FanoutWorkers: -2},
		{KBSiblingCap: -1},
		{LegacyOutbox: true, FanoutWorkers: 4},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Validate(%+v) = nil, want error", bad)
		}
	}
}

func TestMergeAdoptsLegacyOutbox(t *testing.T) {
	got := Common{}.Merge(Common{LegacyOutbox: true})
	if !got.LegacyOutbox {
		t.Fatal("LegacyOutbox not filled from inner")
	}
	got = Common{LegacyOutbox: true}.Merge(Common{})
	if !got.LegacyOutbox {
		t.Fatal("outer LegacyOutbox lost in merge")
	}
}
