// Package plaxton implements the deterministic structured overlay the
// paper's storage architecture relies on (§3, §4.5): Plaxton-style prefix
// routing with Pastry's concrete node state — a digit-indexed routing
// table plus a leaf set of numerically adjacent nodes. Routing reaches the
// live node whose ID is numerically closest to the target key in
// O(log₁₆ N) hops, which is what makes the P2P storage layer's document
// discovery deterministic ("data can always be found").
package plaxton

import (
	"fmt"
	"log/slog"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/vclock"
	"github.com/gloss/active/internal/wire"
)

// Options configure an overlay node.
type Options struct {
	// LeafHalf is the number of leaf-set entries maintained on each side
	// of the local node. Default 8.
	LeafHalf int
	// HeartbeatInterval is the period of leaf-set liveness probing and
	// routing-table maintenance. Default 2s. Zero disables maintenance
	// (useful for static benchmark worlds).
	HeartbeatInterval time.Duration
	// ProbeTimeout bounds liveness probes. Default 500ms.
	ProbeTimeout time.Duration
	// JoinTimeout bounds the join protocol. Default 10s.
	JoinTimeout time.Duration
	// Logger receives overlay diagnostics; nil discards them.
	Logger *slog.Logger
}

func (o *Options) applyDefaults() {
	if o.LeafHalf == 0 {
		o.LeafHalf = 8
	}
	if o.ProbeTimeout == 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
	if o.JoinTimeout == 0 {
		o.JoinTimeout = 10 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
}

// RouteInfo describes a routed message's journey so far.
type RouteInfo struct {
	// Key is the routing target.
	Key ids.ID
	// Origin is the node that initiated the route.
	Origin ids.ID
	// Hops is the number of network hops taken so far.
	Hops int
	// Path lists the nodes traversed (only when the route was traced).
	Path []ids.ID
}

// DeliverFunc receives a message routed to this node.
type DeliverFunc func(info RouteInfo, msg wire.Message)

// ForwardHook observes (and may consume) a message passing through this
// node on its way to key. Returning true stops the routing — the hook has
// handled the message (this is how promiscuous caching answers reads
// mid-path, §4.5).
type ForwardHook func(info RouteInfo, msg wire.Message) bool

// Stats counts routing activity.
type Stats struct {
	Forwarded   uint64 // messages passed to a next hop
	Delivered   uint64 // messages delivered locally
	HookHandled uint64 // messages consumed by the forward hook
	JoinsServed uint64
}

// Overlay is one overlay node.
type Overlay struct {
	ep     netapi.Endpoint
	reg    *wire.Registry
	opts   Options
	log    *slog.Logger
	self   ids.ID
	table  [ids.Digits][16]ids.ID
	leaves *leafSet

	handlers    map[string]DeliverFunc
	hook        ForwardHook
	leavesDirty []func()

	joined    bool
	joinDone  func(error)
	joinTimer vclock.Timer

	probing   map[ids.ID]bool
	probeNext int // round-robin index over table rows for maintenance
	// dead quarantines recently failed nodes (ID → expiry) so that leaf
	// repair gossip cannot reinstate them before every neighbour has
	// purged them — otherwise two nodes with staggered heartbeats can
	// re-teach each other a dead node forever.
	dead  map[ids.ID]time.Duration
	stats Stats
}

// New constructs an overlay node bound to ep. Call CreateNetwork on the
// first node and Join on the rest.
func New(ep netapi.Endpoint, reg *wire.Registry, opts Options) *Overlay {
	opts.applyDefaults()
	o := &Overlay{
		ep:       ep,
		reg:      reg,
		opts:     opts,
		log:      opts.Logger.With("node", ep.ID().Short()),
		self:     ep.ID(),
		leaves:   newLeafSet(ep.ID(), opts.LeafHalf),
		handlers: make(map[string]DeliverFunc),
		probing:  make(map[ids.ID]bool),
		dead:     make(map[ids.ID]time.Duration),
	}
	ep.Handle("plaxton.route", o.handleRoute)
	ep.Handle("plaxton.join", o.handleJoin)
	ep.Handle("plaxton.state", o.handleState)
	ep.Handle("plaxton.announce", o.handleAnnounce)
	ep.Handle("plaxton.ping", func(ctx netapi.Ctx, from ids.ID, _ wire.Message) {
		o.learn(from)
		ctx.Reply(&PongMsg{})
	})
	ep.Handle("plaxton.leafreq", func(ctx netapi.Ctx, from ids.ID, _ wire.Message) {
		o.learn(from)
		ctx.Reply(&LeafReplyMsg{Leaves: idsToStrings(o.leaves.members())})
	})
	return o
}

// ID returns the node's overlay identifier.
func (o *Overlay) ID() ids.ID { return o.self }

// Joined reports whether the node participates in the overlay.
func (o *Overlay) Joined() bool { return o.joined }

// Stats returns a snapshot of routing counters. Must run on the
// overlay's owning goroutine: routing state is confined to the
// endpoint's delivery loop.
//
//vetactive:ignore atomicstats actor-confined to the endpoint delivery goroutine
func (o *Overlay) Stats() Stats { return o.stats }

// Leaves returns the current leaf-set members.
func (o *Overlay) Leaves() []ids.ID { return o.leaves.members() }

// OnDeliver registers the upcall for routed messages of the given payload
// kind.
func (o *Overlay) OnDeliver(kind string, fn DeliverFunc) { o.handlers[kind] = fn }

// SetForwardHook installs the mid-path interception hook.
func (o *Overlay) SetForwardHook(h ForwardHook) { o.hook = h }

// OnLeavesChanged registers a callback invoked whenever leaf-set
// membership changes (the storage layer re-replicates on this signal).
func (o *Overlay) OnLeavesChanged(fn func()) {
	o.leavesDirty = append(o.leavesDirty, fn)
}

// CreateNetwork bootstraps a brand-new overlay consisting of this node.
func (o *Overlay) CreateNetwork() {
	o.joined = true
	o.startMaintenance()
}

// Join enters the overlay via the given bootstrap node. done fires with
// nil on success or an error (e.g. timeout when the bootstrap is dead).
func (o *Overlay) Join(bootstrap ids.ID, done func(error)) {
	if o.joined {
		if done != nil {
			done(nil)
		}
		return
	}
	o.joinDone = done
	o.joinTimer = o.ep.Clock().After(o.opts.JoinTimeout, func() {
		if !o.joined {
			o.finishJoin(fmt.Errorf("plaxton: join via %s timed out", bootstrap.Short()))
		}
	})
	o.ep.Send(bootstrap, &JoinMsg{Joiner: o.self.String()})
}

func (o *Overlay) finishJoin(err error) {
	if o.joinTimer != nil {
		o.joinTimer.Stop()
		o.joinTimer = nil
	}
	done := o.joinDone
	o.joinDone = nil
	if err == nil {
		o.joined = true
		o.startMaintenance()
	}
	if done != nil {
		done(err)
	}
}

// --- routing -----------------------------------------------------------------

// Route sends msg toward the live node numerically closest to key.
// Local delivery happens synchronously when this node is the root.
func (o *Overlay) Route(key ids.ID, msg wire.Message) error {
	return o.route(key, msg, false)
}

// RouteTraced is Route, but records the identities of the nodes the
// message traverses; the delivery upcall sees them in RouteInfo.Path.
// The storage layer uses this for path caching.
func (o *Overlay) RouteTraced(key ids.ID, msg wire.Message) error {
	return o.route(key, msg, true)
}

func (o *Overlay) route(key ids.ID, msg wire.Message, trace bool) error {
	inner, err := o.reg.Encode(&wire.Envelope{From: o.self, To: o.self, Msg: msg})
	if err != nil {
		return fmt.Errorf("plaxton: encode payload: %w", err)
	}
	rm := &RouteMsg{
		Key:       key.String(),
		Origin:    o.self.String(),
		Hops:      0,
		Trace:     trace,
		InnerKind: msg.Kind(),
		Inner:     inner,
	}
	o.routeStep(key, o.self, rm)
	return nil
}

func (o *Overlay) handleRoute(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	o.learn(from)
	rm := msg.(*RouteMsg)
	key, err := ids.Parse(rm.Key)
	if err != nil {
		o.log.Warn("bad route key", "err", err)
		return
	}
	origin, err := ids.Parse(rm.Origin)
	if err != nil {
		o.log.Warn("bad route origin", "err", err)
		return
	}
	rm.Hops++
	if rm.Trace {
		rm.Path = append(rm.Path, o.self.String())
	}
	o.routeStep(key, origin, rm)
}

// routeStep decides the next hop for rm, or delivers it locally.
func (o *Overlay) routeStep(key ids.ID, origin ids.ID, rm *RouteMsg) {
	if o.hook != nil {
		decoded, err := o.decodeInner(rm)
		if err == nil && o.hook(o.routeInfo(key, origin, rm), decoded) {
			o.stats.HookHandled++
			return
		}
	}
	next := o.nextHop(key)
	if next == o.self {
		o.deliverLocal(key, origin, rm)
		return
	}
	o.stats.Forwarded++
	o.ep.Send(next, rm)
}

// routeInfo assembles the delivery metadata for rm.
func (o *Overlay) routeInfo(key ids.ID, origin ids.ID, rm *RouteMsg) RouteInfo {
	info := RouteInfo{Key: key, Origin: origin, Hops: rm.Hops}
	if rm.Trace {
		path, err := stringsToIDs(rm.Path)
		if err == nil {
			info.Path = path
		}
	}
	return info
}

// nextHop implements the Pastry routing rule.
func (o *Overlay) nextHop(key ids.ID) ids.ID { return o.nextHopEx(key, ids.Zero) }

// nextHopEx is nextHop with one candidate excluded — used by the join
// protocol, where the joiner itself must never be chosen as the next hop.
func (o *Overlay) nextHopEx(key ids.ID, exclude ids.ID) ids.ID {
	if key == o.self {
		return o.self
	}
	if o.leaves.inRange(key) {
		best := o.self
		for _, id := range o.leaves.members() {
			if id != exclude && ids.Closer(key, id, best) {
				best = id
			}
		}
		return best
	}
	l := ids.CommonPrefixLen(key, o.self)
	d := key.Digit(l)
	if e := o.table[l][d]; !e.IsZero() && e != exclude {
		return e
	}
	// Rare case: any known node with an equal-or-longer shared prefix
	// that is numerically closer than us.
	best := o.self
	consider := func(id ids.ID) {
		if id.IsZero() || id == o.self || id == exclude {
			return
		}
		if ids.CommonPrefixLen(key, id) >= l && ids.Closer(key, id, best) {
			best = id
		}
	}
	for _, id := range o.leaves.members() {
		consider(id)
	}
	for r := range o.table {
		for c := range o.table[r] {
			consider(o.table[r][c])
		}
	}
	return best
}

func (o *Overlay) decodeInner(rm *RouteMsg) (wire.Message, error) {
	env, err := o.reg.Decode(rm.Inner)
	if err != nil {
		return nil, err
	}
	if env.Msg == nil {
		return nil, fmt.Errorf("plaxton: empty routed payload")
	}
	return env.Msg, nil
}

func (o *Overlay) deliverLocal(key ids.ID, origin ids.ID, rm *RouteMsg) {
	h, ok := o.handlers[rm.InnerKind]
	if !ok {
		o.log.Warn("no deliver handler", "kind", rm.InnerKind)
		return
	}
	decoded, err := o.decodeInner(rm)
	if err != nil {
		o.log.Warn("undecodable routed payload", "kind", rm.InnerKind, "err", err)
		return
	}
	o.stats.Delivered++
	h(o.routeInfo(key, origin, rm), decoded)
}

// --- state learning -----------------------------------------------------------

// learn opportunistically inserts a node into the routing state.
func (o *Overlay) learn(id ids.ID) {
	if id == o.self || id.IsZero() {
		return
	}
	if exp, quarantined := o.dead[id]; quarantined {
		if o.ep.Clock().Now() < exp {
			return
		}
		delete(o.dead, id)
	}
	if o.leaves.insert(id) {
		o.notifyLeaves()
	}
	r := ids.CommonPrefixLen(id, o.self)
	if r < ids.Digits {
		c := id.Digit(r)
		if o.table[r][c].IsZero() {
			o.table[r][c] = id
		}
	}
}

// forget removes a failed node everywhere and quarantines it against
// reinsertion by repair gossip.
func (o *Overlay) forget(id ids.ID) {
	quarantine := 4 * o.opts.HeartbeatInterval
	if quarantine <= 0 {
		quarantine = 10 * time.Second
	}
	o.dead[id] = o.ep.Clock().Now() + quarantine
	changed := o.leaves.remove(id)
	for r := range o.table {
		for c := range o.table[r] {
			if o.table[r][c] == id {
				o.table[r][c] = ids.Zero
			}
		}
	}
	if changed {
		o.notifyLeaves()
		o.repairLeaves()
	}
}

func (o *Overlay) notifyLeaves() {
	for _, fn := range o.leavesDirty {
		fn()
	}
}

// --- join protocol --------------------------------------------------------------

func (o *Overlay) handleJoin(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	jm := msg.(*JoinMsg)
	joiner, err := ids.Parse(jm.Joiner)
	if err != nil {
		o.log.Warn("bad joiner id", "err", err)
		return
	}
	// Learn the previous hop, but never the joiner itself before routing:
	// the join must reach the node that is currently numerically closest,
	// not shortcut to the newcomer.
	if from != joiner {
		o.learn(from)
	}
	o.stats.JoinsServed++
	next := o.nextHopEx(joiner, joiner)
	done := next == o.self
	o.ep.Send(joiner, &StateMsg{
		From:   o.self.String(),
		Done:   done,
		Leaves: idsToStrings(o.leaves.members()),
		Table:  idsToStrings(o.tableEntries()),
	})
	if !done {
		o.ep.Send(next, jm)
	}
	o.learn(joiner)
}

func (o *Overlay) tableEntries() []ids.ID {
	var out []ids.ID
	for r := range o.table {
		for c := range o.table[r] {
			if !o.table[r][c].IsZero() {
				out = append(out, o.table[r][c])
			}
		}
	}
	return out
}

func (o *Overlay) handleState(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	sm := msg.(*StateMsg)
	o.learn(from)
	leaves, err := stringsToIDs(sm.Leaves)
	if err != nil {
		o.log.Warn("bad state leaves", "err", err)
		return
	}
	table, err := stringsToIDs(sm.Table)
	if err != nil {
		o.log.Warn("bad state table", "err", err)
		return
	}
	for _, id := range leaves {
		o.learn(id)
	}
	for _, id := range table {
		o.learn(id)
	}
	if sm.Done && !o.joined {
		// Announce ourselves to everything we learned about.
		for _, id := range o.allKnown() {
			o.ep.Send(id, &AnnounceMsg{Node: o.self.String()})
		}
		o.finishJoin(nil)
	}
}

func (o *Overlay) handleAnnounce(_ netapi.Ctx, from ids.ID, msg wire.Message) {
	am := msg.(*AnnounceMsg)
	node, err := ids.Parse(am.Node)
	if err != nil {
		o.log.Warn("bad announce", "err", err)
		return
	}
	o.learn(from)
	o.learn(node)
}

// allKnown returns every node in the routing state, deterministically.
func (o *Overlay) allKnown() []ids.ID {
	seen := make(map[ids.ID]bool)
	var out []ids.ID
	add := func(id ids.ID) {
		if !id.IsZero() && id != o.self && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range o.leaves.members() {
		add(id)
	}
	for r := range o.table {
		for c := range o.table[r] {
			add(o.table[r][c])
		}
	}
	return out
}

// --- maintenance ------------------------------------------------------------------

func (o *Overlay) startMaintenance() {
	if o.opts.HeartbeatInterval <= 0 {
		return
	}
	var tick func()
	tick = func() {
		o.heartbeat()
		o.ep.Clock().After(o.opts.HeartbeatInterval, tick)
	}
	o.ep.Clock().After(o.opts.HeartbeatInterval, tick)
}

// heartbeat probes leaf members and one routing-table entry per round.
func (o *Overlay) heartbeat() {
	for _, id := range o.leaves.members() {
		o.probe(id)
	}
	// Round-robin one table row per heartbeat to bound probe volume.
	row := o.probeNext % ids.Digits
	o.probeNext++
	for c := range o.table[row] {
		if e := o.table[row][c]; !e.IsZero() && !o.leaves.contains(e) {
			o.probe(e)
		}
	}
}

// probe pings id; on failure the node is forgotten and repair runs.
func (o *Overlay) probe(id ids.ID) {
	if o.probing[id] {
		return
	}
	o.probing[id] = true
	o.ep.Request(id, &PingMsg{}, o.opts.ProbeTimeout, func(_ wire.Message, err error) {
		delete(o.probing, id)
		if err != nil {
			o.log.Debug("probe failed", "peer", id.Short(), "err", err)
			o.forget(id)
		}
	})
}

// repairLeaves refills the leaf set by asking the current extremes for
// their own leaves.
func (o *Overlay) repairLeaves() {
	for _, id := range o.leaves.members() {
		o.ep.Request(id, &LeafReqMsg{}, o.opts.ProbeTimeout, func(reply wire.Message, err error) {
			if err != nil {
				return
			}
			lr, ok := reply.(*LeafReplyMsg)
			if !ok {
				return
			}
			members, err := stringsToIDs(lr.Leaves)
			if err != nil {
				return
			}
			for _, m := range members {
				o.learn(m)
			}
		})
	}
}
