package plaxton

import (
	"bytes"
	"testing"

	"github.com/gloss/active/internal/wire"
)

// FuzzRouteMsgParseWire drives the overlay's envelope decoder — the
// message every routed payload travels inside — with arbitrary frames:
// it must never panic, and accepted messages must round-trip
// byte-stably.
func FuzzRouteMsgParseWire(f *testing.F) {
	seed := &RouteMsg{
		Key:       "0123abcd",
		Origin:    "n1",
		Hops:      2,
		Path:      []string{"n1", "n2"},
		InnerKind: "put",
		Inner:     wire.Bytes("payload"),
	}
	f.Add([]byte(seed.AppendWire(nil)))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x6B})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m RouteMsg
		if err := m.ParseWire(wire.NewBinReader(data)); err != nil {
			return
		}
		first := m.AppendWire(nil)
		var re RouteMsg
		if err := re.ParseWire(wire.NewBinReader(first)); err != nil {
			t.Fatalf("re-decode of canonical form failed: %v", err)
		}
		if second := re.AppendWire(nil); !bytes.Equal(first, second) {
			t.Fatalf("encode not a fixed point:\n first=%x\nsecond=%x", first, second)
		}
	})
}
