package plaxton

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/gloss/active/internal/ids"
)

func TestLeafSetInsertOrderAndBound(t *testing.T) {
	self := ids.MustParse("80000000000000000000000000000000")
	ls := newLeafSet(self, 2)
	mk := func(hex string) ids.ID { return ids.MustParse(hex) }
	// Three successors and three predecessors; with half=2 only the two
	// closest on each side survive once both sides are populated.
	s1 := mk("80000000000000000000000000000001")
	s2 := mk("80000000000000000000000000000002")
	s3 := mk("80000000000000000000000000000003")
	p1 := mk("7fffffffffffffffffffffffffffffff")
	p2 := mk("7ffffffffffffffffffffffffffffffe")
	p3 := mk("7ffffffffffffffffffffffffffffffd")
	for _, id := range []ids.ID{s3, s1, s2, p3, p1, p2} {
		ls.insert(id)
	}
	for _, want := range []ids.ID{s1, s2, p1, p2} {
		if !ls.contains(want) {
			t.Fatalf("closest member %s missing", want.Short())
		}
	}
	for _, gone := range []ids.ID{s3, p3} {
		if ls.contains(gone) {
			t.Fatalf("third-closest member %s should be evicted", gone.Short())
		}
	}
	// Self and duplicates never insert.
	if ls.insert(self) {
		t.Fatal("self inserted")
	}
	if ls.insert(s1) {
		t.Fatal("duplicate insert reported change")
	}
	// Removal.
	if !ls.remove(s1) {
		t.Fatal("remove existing failed")
	}
	if ls.remove(s1) {
		t.Fatal("remove of absent reported change")
	}
}

// Property: for random member sets, closest() agrees with brute force
// over members ∪ {self}.
func TestQuickLeafSetClosest(t *testing.T) {
	f := func(seed int64, keyBytes [16]byte) bool {
		rng := rand.New(rand.NewSource(seed))
		self := ids.Random(rng)
		ls := newLeafSet(self, 4)
		members := []ids.ID{self}
		for i := 0; i < 12; i++ {
			id := ids.Random(rng)
			ls.insert(id)
		}
		members = append(members, ls.members()...)
		key := ids.ID(keyBytes)
		got := ls.closest(key)
		best := members[0]
		for _, m := range members[1:] {
			if ids.Closer(key, m, best) {
				best = m
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: inRange(key) is true whenever key falls between the extreme
// leaves through self, and closest() then picks the numerically best.
func TestLeafSetInRangeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	self := ids.Random(rng)
	ls := newLeafSet(self, 4)
	var all []ids.ID
	for i := 0; i < 10; i++ {
		id := ids.Random(rng)
		ls.insert(id)
		all = append(all, id)
	}
	sort.Slice(all, func(i, j int) bool { return ids.Less(all[i], all[j]) })
	// Keys equal to members are always in range of themselves.
	for _, m := range ls.members() {
		if !ls.inRange(m) {
			// A member may be outside the contiguous segment when the
			// leaf set is small relative to the population; tolerate
			// only if it is an extreme.
			continue
		}
		got := ls.closest(m)
		if got != m {
			t.Fatalf("closest(%s) = %s, want itself", m.Short(), got.Short())
		}
	}
	// Self's own key is always in range.
	if !ls.inRange(self) {
		t.Fatal("self key out of range")
	}
}

func TestLeafSetEmpty(t *testing.T) {
	self := ids.FromString("solo")
	ls := newLeafSet(self, 4)
	if len(ls.members()) != 0 {
		t.Fatal("empty leaf set has members")
	}
	if !ls.inRange(ids.FromString("anything")) {
		t.Fatal("empty leaf set must claim everything in range")
	}
	if got := ls.closest(ids.FromString("anything")); got != self {
		t.Fatal("empty leaf set must answer self")
	}
}
