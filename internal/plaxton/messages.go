package plaxton

import (
	"fmt"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/wire"
)

// RouteMsg wraps an application message being routed toward a key. The
// payload travels as encoded XML so the overlay is transport-agnostic.
type RouteMsg struct {
	Key       string     `xml:"key,attr"`
	Origin    string     `xml:"origin,attr"`
	Hops      int        `xml:"hops,attr"`
	Trace     bool       `xml:"trace,attr,omitempty"`
	Path      []string   `xml:"path>node,omitempty"`
	InnerKind string     `xml:"ik,attr"`
	Inner     wire.Bytes `xml:"inner"`
}

// Kind implements wire.Message.
func (RouteMsg) Kind() string { return "plaxton.route" }

// PayloadKind attributes a routed frame's wire bytes to the message kind
// it carries, so per-kind byte metrics charge routed traffic to the
// subsystem that sent it rather than to the overlay envelope.
func (m RouteMsg) PayloadKind() string { return m.InnerKind }

// JoinMsg is routed toward the joining node's own ID; every hop pushes its
// state to the newcomer, and the root completes the join.
type JoinMsg struct {
	Joiner string `xml:"joiner,attr"`
}

// Kind implements wire.Message.
func (JoinMsg) Kind() string { return "plaxton.join" }

// StateMsg transfers a node's routing state to a joining node.
type StateMsg struct {
	From   string   `xml:"from,attr"`
	Done   bool     `xml:"done,attr"` // true when sent by the join root
	Leaves []string `xml:"leaf"`
	Table  []string `xml:"entry"`
}

// Kind implements wire.Message.
func (StateMsg) Kind() string { return "plaxton.state" }

// AnnounceMsg tells existing nodes about a newly joined node.
type AnnounceMsg struct {
	Node string `xml:"node,attr"`
}

// Kind implements wire.Message.
func (AnnounceMsg) Kind() string { return "plaxton.announce" }

// PingMsg probes liveness (request).
type PingMsg struct{}

// Kind implements wire.Message.
func (PingMsg) Kind() string { return "plaxton.ping" }

// PongMsg answers a ping.
type PongMsg struct{}

// Kind implements wire.Message.
func (PongMsg) Kind() string { return "plaxton.pong" }

// LeafReqMsg asks a node for its leaf set (request; used for repair).
type LeafReqMsg struct{}

// Kind implements wire.Message.
func (LeafReqMsg) Kind() string { return "plaxton.leafreq" }

// LeafReplyMsg returns a node's leaf set members.
type LeafReplyMsg struct {
	Leaves []string `xml:"leaf"`
}

// Kind implements wire.Message.
func (LeafReplyMsg) Kind() string { return "plaxton.leafreply" }

// RegisterMessages records all overlay message types in a wire registry.
func RegisterMessages(r *wire.Registry) {
	r.Register(&RouteMsg{})
	r.Register(&JoinMsg{})
	r.Register(&StateMsg{})
	r.Register(&AnnounceMsg{})
	r.Register(&PingMsg{})
	r.Register(&PongMsg{})
	r.Register(&LeafReqMsg{})
	r.Register(&LeafReplyMsg{})
}

// idsToStrings converts identifiers for XML transport.
func idsToStrings(in []ids.ID) []string {
	out := make([]string, len(in))
	for i, id := range in {
		out[i] = id.String()
	}
	return out
}

// stringsToIDs parses identifiers, failing on the first malformed entry.
func stringsToIDs(in []string) ([]ids.ID, error) {
	out := make([]ids.ID, len(in))
	for i, s := range in {
		id, err := ids.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("plaxton: bad id list entry %d: %w", i, err)
		}
		out[i] = id
	}
	return out, nil
}
