package plaxton

import (
	"github.com/gloss/active/internal/wire"
)

// Compact binary wire forms for the overlay protocol. RouteMsg is the
// hot one — every routed application message (store puts/gets, pushed
// replicas) rides inside it — so its already-encoded Inner payload is
// carried as raw length-prefixed bytes instead of base64 text.

var (
	_ wire.BinaryMessage = (*RouteMsg)(nil)
	_ wire.BinaryMessage = (*JoinMsg)(nil)
	_ wire.BinaryMessage = (*StateMsg)(nil)
	_ wire.BinaryMessage = (*AnnounceMsg)(nil)
	_ wire.BinaryMessage = (*PingMsg)(nil)
	_ wire.BinaryMessage = (*PongMsg)(nil)
	_ wire.BinaryMessage = (*LeafReqMsg)(nil)
	_ wire.BinaryMessage = (*LeafReplyMsg)(nil)
)

func appendStrings(b []byte, ss []string) []byte {
	b = wire.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = wire.AppendString(b, s)
	}
	return b
}

func readStrings(r *wire.BinReader) []string {
	n := r.Count()
	var out []string
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, r.String())
	}
	return out
}

// AppendWire implements wire.BinaryMessage.
func (m *RouteMsg) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.Key)
	b = wire.AppendString(b, m.Origin)
	b = wire.AppendVarint(b, int64(m.Hops))
	b = wire.AppendBool(b, m.Trace)
	b = appendStrings(b, m.Path)
	b = wire.AppendString(b, m.InnerKind)
	return wire.AppendBytes(b, m.Inner)
}

// ParseWire implements wire.BinaryMessage.
func (m *RouteMsg) ParseWire(r *wire.BinReader) error {
	m.Key = r.String()
	m.Origin = r.String()
	m.Hops = int(r.Varint())
	m.Trace = r.Bool()
	m.Path = readStrings(r)
	m.InnerKind = r.String()
	if raw := r.Bytes(); raw != nil {
		// Copy: BinReader slices alias the frame, and routed payloads
		// outlive it (they are re-encoded and forwarded hop by hop).
		m.Inner = append(wire.Bytes(nil), raw...)
	} else {
		m.Inner = nil
	}
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *JoinMsg) AppendWire(b []byte) []byte { return wire.AppendString(b, m.Joiner) }

// ParseWire implements wire.BinaryMessage.
func (m *JoinMsg) ParseWire(r *wire.BinReader) error {
	m.Joiner = r.String()
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *StateMsg) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.From)
	b = wire.AppendBool(b, m.Done)
	b = appendStrings(b, m.Leaves)
	return appendStrings(b, m.Table)
}

// ParseWire implements wire.BinaryMessage.
func (m *StateMsg) ParseWire(r *wire.BinReader) error {
	m.From = r.String()
	m.Done = r.Bool()
	m.Leaves = readStrings(r)
	m.Table = readStrings(r)
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *AnnounceMsg) AppendWire(b []byte) []byte { return wire.AppendString(b, m.Node) }

// ParseWire implements wire.BinaryMessage.
func (m *AnnounceMsg) ParseWire(r *wire.BinReader) error {
	m.Node = r.String()
	return r.Err()
}

// AppendWire implements wire.BinaryMessage.
func (m *PingMsg) AppendWire(b []byte) []byte { return b }

// ParseWire implements wire.BinaryMessage.
func (m *PingMsg) ParseWire(r *wire.BinReader) error { return r.Err() }

// AppendWire implements wire.BinaryMessage.
func (m *PongMsg) AppendWire(b []byte) []byte { return b }

// ParseWire implements wire.BinaryMessage.
func (m *PongMsg) ParseWire(r *wire.BinReader) error { return r.Err() }

// AppendWire implements wire.BinaryMessage.
func (m *LeafReqMsg) AppendWire(b []byte) []byte { return b }

// ParseWire implements wire.BinaryMessage.
func (m *LeafReqMsg) ParseWire(r *wire.BinReader) error { return r.Err() }

// AppendWire implements wire.BinaryMessage.
func (m *LeafReplyMsg) AppendWire(b []byte) []byte { return appendStrings(b, m.Leaves) }

// ParseWire implements wire.BinaryMessage.
func (m *LeafReplyMsg) ParseWire(r *wire.BinReader) error {
	m.Leaves = readStrings(r)
	return r.Err()
}
