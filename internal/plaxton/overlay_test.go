package plaxton

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/simnet"
	"github.com/gloss/active/internal/wire"
)

type probeMsg struct {
	Tag string `xml:"tag,attr"`
}

func (probeMsg) Kind() string { return "test.probe" }

func testRegistry() *wire.Registry {
	reg := wire.NewRegistry()
	RegisterMessages(reg)
	reg.Register(&probeMsg{})
	return reg
}

// ring is a fully joined overlay world for tests.
type ring struct {
	world    *simnet.World
	reg      *wire.Registry
	overlays []*Overlay
	byID     map[ids.ID]*Overlay
}

// buildRing creates n overlay nodes and joins them sequentially.
func buildRing(t testing.TB, seed int64, n int, opts Options) *ring {
	t.Helper()
	w := simnet.NewWorld(simnet.Config{Seed: seed})
	reg := testRegistry()
	r := &ring{world: w, reg: reg, byID: make(map[ids.ID]*Overlay)}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		id := ids.Random(rng)
		node := w.NewNode(id, "r", netapi.Coord{X: rng.Float64() * 5000, Y: rng.Float64() * 5000})
		o := New(node, reg, opts)
		r.overlays = append(r.overlays, o)
		r.byID[id] = o
	}
	r.overlays[0].CreateNetwork()
	for i := 1; i < n; i++ {
		i := i
		joined := false
		r.overlays[i].Join(r.overlays[rng.Intn(i)].ID(), func(err error) {
			if err != nil {
				t.Errorf("join %d: %v", i, err)
			}
			joined = true
		})
		w.RunFor(2 * time.Second)
		if !joined {
			t.Fatalf("node %d did not join", i)
		}
	}
	// Let announcements settle.
	w.RunFor(5 * time.Second)
	return r
}

// trueRoot returns the node ID numerically closest to key (brute force).
func (r *ring) trueRoot(key ids.ID) ids.ID {
	best := r.overlays[0].ID()
	for _, o := range r.overlays[1:] {
		if ids.Closer(key, o.ID(), best) {
			best = o.ID()
		}
	}
	return best
}

func TestSingleNodeDeliversToSelf(t *testing.T) {
	r := buildRing(t, 1, 1, Options{HeartbeatInterval: -1})
	o := r.overlays[0]
	var gotKey ids.ID
	o.OnDeliver("test.probe", func(info RouteInfo, msg wire.Message) {
		gotKey = info.Key
	})
	key := ids.FromString("anything")
	if err := o.Route(key, &probeMsg{Tag: "x"}); err != nil {
		t.Fatal(err)
	}
	r.world.RunFor(time.Second)
	if gotKey != key {
		t.Fatalf("not delivered locally")
	}
}

func TestRoutingReachesNumericallyClosest(t *testing.T) {
	const n = 48
	r := buildRing(t, 2, n, Options{HeartbeatInterval: -1})
	rng := rand.New(rand.NewSource(77))

	delivered := make(map[ids.ID]ids.ID) // key → node that delivered
	for _, o := range r.overlays {
		o := o
		o.OnDeliver("test.probe", func(info RouteInfo, msg wire.Message) {
			delivered[info.Key] = o.ID()
		})
	}
	const probes = 200
	keys := make([]ids.ID, probes)
	for i := range keys {
		keys[i] = ids.Random(rng)
		src := r.overlays[rng.Intn(n)]
		if err := src.Route(keys[i], &probeMsg{Tag: fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r.world.RunFor(30 * time.Second)
	for i, key := range keys {
		got, ok := delivered[key]
		if !ok {
			t.Fatalf("probe %d not delivered", i)
		}
		if want := r.trueRoot(key); got != want {
			t.Fatalf("probe %d delivered at %s, want true root %s", i, got.Short(), want.Short())
		}
	}
}

func TestRoutingHopsLogarithmic(t *testing.T) {
	const n = 64
	r := buildRing(t, 3, n, Options{HeartbeatInterval: -1})
	rng := rand.New(rand.NewSource(5))
	var totalHops, count int
	for _, o := range r.overlays {
		o.OnDeliver("test.probe", func(info RouteInfo, msg wire.Message) {
			totalHops += info.Hops
			count++
		})
	}
	for i := 0; i < 100; i++ {
		src := r.overlays[rng.Intn(n)]
		if err := src.Route(ids.Random(rng), &probeMsg{}); err != nil {
			t.Fatal(err)
		}
	}
	r.world.RunFor(30 * time.Second)
	if count != 100 {
		t.Fatalf("delivered %d of 100", count)
	}
	avg := float64(totalHops) / float64(count)
	// log16(64) ≈ 1.5; allow generous headroom but forbid O(N) flooding.
	if avg > 6 {
		t.Fatalf("average hops %.2f too high for 64 nodes", avg)
	}
}

func TestOriginAndHopsReported(t *testing.T) {
	r := buildRing(t, 4, 16, Options{HeartbeatInterval: -1})
	src := r.overlays[3]
	var gotOrigin ids.ID
	gotHops := -1
	for _, o := range r.overlays {
		o.OnDeliver("test.probe", func(info RouteInfo, msg wire.Message) {
			gotOrigin = info.Origin
			gotHops = info.Hops
		})
	}
	if err := src.Route(ids.FromString("key-x"), &probeMsg{Tag: "t"}); err != nil {
		t.Fatal(err)
	}
	r.world.RunFor(10 * time.Second)
	if gotOrigin != src.ID() {
		t.Fatalf("origin = %v, want %v", gotOrigin.Short(), src.ID().Short())
	}
	if gotHops < 0 {
		t.Fatalf("not delivered")
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	r := buildRing(t, 5, 8, Options{HeartbeatInterval: -1})
	var got string
	for _, o := range r.overlays {
		o.OnDeliver("test.probe", func(_ RouteInfo, msg wire.Message) {
			got = msg.(*probeMsg).Tag
		})
	}
	if err := r.overlays[0].Route(ids.FromString("k"), &probeMsg{Tag: "payload-ok"}); err != nil {
		t.Fatal(err)
	}
	r.world.RunFor(10 * time.Second)
	if got != "payload-ok" {
		t.Fatalf("payload = %q", got)
	}
}

func TestForwardHookIntercepts(t *testing.T) {
	const n = 32
	r := buildRing(t, 6, n, Options{HeartbeatInterval: -1})
	rng := rand.New(rand.NewSource(9))
	delivered := 0
	hooked := 0
	for _, o := range r.overlays {
		o.OnDeliver("test.probe", func(_ RouteInfo, _ wire.Message) { delivered++ })
		o.SetForwardHook(func(info RouteInfo, msg wire.Message) bool {
			if info.Hops > 0 { // only intercept in-flight, not at origin
				hooked++
				return true
			}
			return false
		})
	}
	for i := 0; i < 50; i++ {
		src := r.overlays[rng.Intn(n)]
		if err := src.Route(ids.Random(rng), &probeMsg{}); err != nil {
			t.Fatal(err)
		}
	}
	r.world.RunFor(30 * time.Second)
	if hooked == 0 {
		t.Fatalf("hook never intercepted")
	}
	if hooked+delivered != 50 {
		t.Fatalf("hooked %d + delivered %d != 50", hooked, delivered)
	}
}

func TestJoinTimeoutOnDeadBootstrap(t *testing.T) {
	w := simnet.NewWorld(simnet.Config{Seed: 10})
	reg := testRegistry()
	rng := rand.New(rand.NewSource(1))
	deadID := ids.Random(rng)
	n := w.NewNode(ids.Random(rng), "r", netapi.Coord{})
	o := New(n, reg, Options{JoinTimeout: time.Second, HeartbeatInterval: -1})
	var gotErr error
	o.Join(deadID, func(err error) { gotErr = err })
	w.RunFor(5 * time.Second)
	if gotErr == nil {
		t.Fatalf("join to dead bootstrap should fail")
	}
	if o.Joined() {
		t.Fatalf("node claims joined after failed join")
	}
}

func TestFailureDetectionAndRepair(t *testing.T) {
	const n = 24
	r := buildRing(t, 11, n, Options{
		HeartbeatInterval: time.Second,
		ProbeTimeout:      300 * time.Millisecond,
	})
	// Kill a quarter of the nodes.
	killed := map[ids.ID]bool{}
	for i := 0; i < n/4; i++ {
		o := r.overlays[i*3+1]
		killed[o.ID()] = true
		r.world.Node(o.ID()).Kill()
	}
	// Let several heartbeat rounds run.
	r.world.RunFor(30 * time.Second)
	// Survivors must have purged dead nodes from their leaf sets.
	for _, o := range r.overlays {
		if killed[o.ID()] {
			continue
		}
		for _, leaf := range o.Leaves() {
			if killed[leaf] {
				t.Fatalf("node %s still lists dead leaf %s", o.ID().Short(), leaf.Short())
			}
		}
	}
	// Routing still reaches the numerically closest *live* node.
	rng := rand.New(rand.NewSource(123))
	delivered := make(map[ids.ID]ids.ID)
	for _, o := range r.overlays {
		if killed[o.ID()] {
			continue
		}
		o := o
		o.OnDeliver("test.probe", func(info RouteInfo, _ wire.Message) {
			delivered[info.Key] = o.ID()
		})
	}
	liveRoot := func(key ids.ID) ids.ID {
		var best ids.ID
		first := true
		for _, o := range r.overlays {
			if killed[o.ID()] {
				continue
			}
			if first || ids.Closer(key, o.ID(), best) {
				best = o.ID()
				first = false
			}
		}
		return best
	}
	keys := make([]ids.ID, 50)
	for i := range keys {
		keys[i] = ids.Random(rng)
		var src *Overlay
		for {
			src = r.overlays[rng.Intn(n)]
			if !killed[src.ID()] {
				break
			}
		}
		if err := src.Route(keys[i], &probeMsg{}); err != nil {
			t.Fatal(err)
		}
	}
	r.world.RunFor(30 * time.Second)
	ok := 0
	for _, key := range keys {
		if got, found := delivered[key]; found && got == liveRoot(key) {
			ok++
		}
	}
	// After repair, the overwhelming majority must land at the live root.
	if ok < 45 {
		t.Fatalf("only %d/50 probes reached the live root after churn", ok)
	}
}

func TestLeavesChangedCallback(t *testing.T) {
	w := simnet.NewWorld(simnet.Config{Seed: 12})
	reg := testRegistry()
	a := New(w.NewNode(ids.FromString("n-a"), "r", netapi.Coord{}), reg, Options{HeartbeatInterval: -1})
	b := New(w.NewNode(ids.FromString("n-b"), "r", netapi.Coord{}), reg, Options{HeartbeatInterval: -1})
	calls := 0
	a.OnLeavesChanged(func() { calls++ })
	a.CreateNetwork()
	b.Join(a.ID(), nil)
	w.RunFor(5 * time.Second)
	if calls == 0 {
		t.Fatalf("leaf-change callback never fired on join")
	}
}

// TestJoinConvergenceProperty: after sequential joins, every node's leaf
// set must contain its true ring neighbours (the property replica
// placement depends on).
func TestJoinConvergenceProperty(t *testing.T) {
	const n = 40
	r := buildRing(t, 13, n, Options{HeartbeatInterval: -1, LeafHalf: 4})
	// Compute true ring order.
	sorted := make([]ids.ID, n)
	for i, o := range r.overlays {
		sorted[i] = o.ID()
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && ids.Less(sorted[j], sorted[j-1]); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := make(map[ids.ID]int, n)
	for i, id := range sorted {
		idx[id] = i
	}
	for _, o := range r.overlays {
		i := idx[o.ID()]
		succ := sorted[(i+1)%n]
		pred := sorted[(i-1+n)%n]
		leaves := o.Leaves()
		has := func(want ids.ID) bool {
			for _, l := range leaves {
				if l == want {
					return true
				}
			}
			return false
		}
		if !has(succ) || !has(pred) {
			t.Fatalf("node %s leaf set misses ring neighbour (succ %v pred %v leaves %d)",
				o.ID().Short(), has(succ), has(pred), len(leaves))
		}
	}
}
