package plaxton

import (
	"github.com/gloss/active/internal/ids"
)

// leafSet maintains the L/2 numerically closest node IDs on each side of
// the local node on the identifier ring, per Pastry.
type leafSet struct {
	self ids.ID
	half int
	cw   []ids.ID // successors, sorted by clockwise distance from self
	ccw  []ids.ID // predecessors, sorted by counter-clockwise distance
}

func newLeafSet(self ids.ID, half int) *leafSet {
	return &leafSet{self: self, half: half}
}

// insert adds id to the leaf set if it belongs; reports whether membership
// changed.
func (l *leafSet) insert(id ids.ID) bool {
	if id == l.self {
		return false
	}
	changed := false
	if insertRanked(&l.cw, id, l.half, func(a, b ids.ID) bool {
		return ids.Less(ids.Sub(a, l.self), ids.Sub(b, l.self))
	}) {
		changed = true
	}
	if insertRanked(&l.ccw, id, l.half, func(a, b ids.ID) bool {
		return ids.Less(ids.Sub(l.self, a), ids.Sub(l.self, b))
	}) {
		changed = true
	}
	return changed
}

// insertRanked inserts id into the slice ordered by less, keeping at most
// max entries. Reports whether the slice changed.
func insertRanked(s *[]ids.ID, id ids.ID, max int, less func(a, b ids.ID) bool) bool {
	for _, x := range *s {
		if x == id {
			return false
		}
	}
	pos := len(*s)
	for i, x := range *s {
		if less(id, x) {
			pos = i
			break
		}
	}
	if pos >= max {
		return false
	}
	*s = append(*s, ids.Zero)
	copy((*s)[pos+1:], (*s)[pos:])
	(*s)[pos] = id
	if len(*s) > max {
		*s = (*s)[:max]
	}
	return true
}

// remove drops id from both sides; reports whether anything changed.
func (l *leafSet) remove(id ids.ID) bool {
	changed := false
	for _, side := range []*[]ids.ID{&l.cw, &l.ccw} {
		for i, x := range *side {
			if x == id {
				*side = append((*side)[:i], (*side)[i+1:]...)
				changed = true
				break
			}
		}
	}
	return changed
}

// members returns the union of both sides, deduplicated, in deterministic
// order (cw then ccw).
func (l *leafSet) members() []ids.ID {
	out := make([]ids.ID, 0, len(l.cw)+len(l.ccw))
	seen := make(map[ids.ID]bool, len(l.cw)+len(l.ccw))
	for _, id := range l.cw {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range l.ccw {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// contains reports leaf membership.
func (l *leafSet) contains(id ids.ID) bool {
	for _, x := range l.cw {
		if x == id {
			return true
		}
	}
	for _, x := range l.ccw {
		if x == id {
			return true
		}
	}
	return false
}

// inRange reports whether key falls within the ring segment spanned by
// the leaf set (from the farthest predecessor to the farthest successor
// through self). With an empty side the segment degenerates and the local
// node is the best known root.
func (l *leafSet) inRange(key ids.ID) bool {
	if len(l.cw) == 0 || len(l.ccw) == 0 {
		return true
	}
	lo := l.ccw[len(l.ccw)-1] // farthest predecessor
	hi := l.cw[len(l.cw)-1]   // farthest successor
	// Segment (lo, hi] walking clockwise includes self.
	return key == lo || ids.Between(lo, key, hi)
}

// closest returns the member (or self) numerically closest to key on the
// ring, ties broken by smaller ID.
func (l *leafSet) closest(key ids.ID) ids.ID {
	best := l.self
	for _, id := range l.members() {
		if ids.Closer(key, id, best) {
			best = id
		}
	}
	return best
}
