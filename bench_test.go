package active

// One benchmark per experiment in EXPERIMENTS.md (E-F1..E-F3 reproduce
// the paper's figures; E-T1..E-T10 back its quantitative claims), plus
// micro-benchmarks of the hottest code paths. The macro benchmarks run a
// full deterministic world per iteration and report the headline metric
// via b.ReportMetric; run cmd/benchtab for the full tables.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/exp"
	"github.com/gloss/active/internal/ids"
	"github.com/gloss/active/internal/knowledge"
	"github.com/gloss/active/internal/match"
	"github.com/gloss/active/internal/netapi"
	"github.com/gloss/active/internal/pubsub"
	"github.com/gloss/active/internal/simnet"
	"github.com/gloss/active/internal/vclock"
	"github.com/gloss/active/internal/wire"
)

// report parses a numeric table cell and reports it as a benchmark metric.
func report(b *testing.B, tab *exp.Table, row, col int, unit string) {
	b.Helper()
	cell := strings.TrimSuffix(tab.Rows[row][col], "%")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		b.Fatalf("cell %q not numeric: %v", cell, err)
	}
	b.ReportMetric(v, unit)
}

func BenchmarkE_F1_GlobalMatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.F1GlobalMatching(true)
		report(b, tab, 0, 3, "distill-ratio")
	}
}

func BenchmarkE_F2_Pipelines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.F2Pipelines(true)
		report(b, tab, 2, 4, "inter-node-ms")
	}
}

func BenchmarkE_F3_Deployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.F3Deployment(true)
		report(b, tab, 0, 3, "deploy-rtt-ms")
	}
}

func BenchmarkE_T1_PlaxtonRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T1PlaxtonRouting(true)
		report(b, tab, len(tab.Rows)-1, 3, "mean-hops")
	}
}

func BenchmarkE_T2_ReplicaResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T2ReplicaResilience(true)
		report(b, tab, len(tab.Rows)-1, 3, "healed-avail-pct")
	}
}

func BenchmarkE_T3_PromiscuousCaching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T3PromiscuousCaching(true)
		report(b, tab, 1, 2, "cached-read-ms")
	}
}

func BenchmarkE_T4_PubSubScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T4PubSubScaling(true)
		report(b, tab, 0, 4, "fwd-subs")
	}
}

func BenchmarkE_T5_MatchThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T5MatchThroughput(true)
		report(b, tab, 0, 3, "events-per-sec")
	}
}

func BenchmarkE_T6_EvolutionRepair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T6EvolutionRepair(true)
		report(b, tab, 0, 2, "repair-ms")
	}
}

func BenchmarkE_T7_PlacementPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T7PlacementPolicies(true)
		report(b, tab, 2, 3, "latency-policy-ms")
	}
}

func BenchmarkE_T8_TypeProjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T8TypeProjection(true)
		report(b, tab, 0, 2, "us-per-doc")
	}
}

func BenchmarkE_T9_MobilityHandoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T9MobilityHandoff(true)
		report(b, tab, 1, 5, "handoff-ms")
	}
}

func BenchmarkE_T10_Discovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T10Discovery(true)
		report(b, tab, 0, 1, "discovery-ms")
	}
}

func BenchmarkE_T11_WireFormat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T11WireFormat(true)
		report(b, tab, 0, 3, "bytes-ratio")
		report(b, tab, 0, 6, "enc-speedup")
	}
}

func BenchmarkE_T12_FanoutHotPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T12FanoutHotPath(true)
		report(b, tab, 0, 2, "borrow-clones-per-dlv") // must stay 0.00
		report(b, tab, 0, 3, "borrow-allocs-per-dlv")
	}
}

func BenchmarkE_T13_Backpressure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T13Backpressure(true)
		report(b, tab, 0, 3, "sim-smallest-budget-drop-pct") // must stay > 0: budget engaged
		report(b, tab, 7, 3, "tcp-largest-budget-drop-pct")  // should stay ~0: budget absorbs the burst
	}
}

func BenchmarkE_T14_ShardedMatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T14ShardedMatch(true)
		// In quick mode the first half of the rows is the path=broker
		// series (full publishes) and the second half the path=index
		// continuity series; report the most-sharded row of each.
		mid := len(tab.Rows) / 2
		report(b, tab, mid-1, 4, "broker-kpubs-per-s")
		report(b, tab, mid-1, 5, "broker-speedup") // ~1.0 on a single core; >1 with real parallelism
		report(b, tab, len(tab.Rows)-1, 4, "index-kpubs-per-s")
		report(b, tab, len(tab.Rows)-1, 5, "index-speedup")
	}
}

func BenchmarkE_T15_ParallelFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T15ParallelFanout(true)
		last := len(tab.Rows) - 1
		report(b, tab, last, 4, "pooled-kdlv-per-s")
		report(b, tab, last, 6, "pooled-speedup") // ≤1 on a single core; the multi-core acceptance bar is ≥2x at 8 workers
	}
}

func BenchmarkE_T16_StoragePlane(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T16StoragePlane(true)
		last := len(tab.Rows) - 1
		report(b, tab, 1, 4, "digest-payload-kb")
		report(b, tab, 4, 4, "legacy-payload-kb")
		report(b, tab, last-1, 5, "erasure-wire-kb")
		report(b, tab, last, 5, "recopy-wire-kb") // acceptance: ≥3x the erasure row
	}
}

func BenchmarkE_T17_Knowledge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exp.T17Knowledge(true)
		// Quick rows: 0 = legacy (never converges), 1 = causal 2-writer.
		report(b, tab, 0, 6, "legacy-lost-facts") // acceptance: > 0 (the flaw)
		report(b, tab, 1, 5, "causal-converge-ms")
		report(b, tab, 1, 6, "causal-lost-facts") // acceptance: 0
		report(b, tab, 1, 7, "causal-wire-kb")
	}
}

// --- micro-benchmarks of hot paths ------------------------------------------

// BenchmarkBrokerPublishWorld measures the full per-publish path through
// the simulated network — client → broker chain → matched subscribers —
// with the counting predicate index doing the matching at every hop.
// (internal/pubsub's BenchmarkBrokerPublish isolates matching cost alone,
// index vs preserved linear scan.)
func BenchmarkBrokerPublishWorld(b *testing.B) {
	w := simnet.NewWorld(simnet.Config{Seed: 7})
	var brokers []*pubsub.Broker
	for i := 0; i < 4; i++ {
		n := w.NewNode(ids.FromString(fmt.Sprintf("bb-%d", i)), "eu",
			netapi.Coord{X: float64(i) * 100})
		brokers = append(brokers, pubsub.NewBroker(n, pubsub.Options{}))
		if i > 0 {
			pubsub.ConnectBrokers(brokers[i-1], brokers[i])
		}
	}
	delivered := 0
	for i := 0; i < 100; i++ {
		n := w.NewNode(ids.FromString(fmt.Sprintf("bb-sub-%d", i)), "eu",
			netapi.Coord{X: float64(i % 4 * 100)})
		c := pubsub.NewClient(n, brokers[i%4].ID())
		c.Subscribe(pubsub.NewFilter(pubsub.TypeIs("gps.location"),
			pubsub.Eq("user", event.S(fmt.Sprintf("user-%02d", i)))),
			func(*event.Event) { delivered++ })
	}
	pn := w.NewNode(ids.FromString("bb-pub"), "eu", netapi.Coord{})
	pub := pubsub.NewClient(pn, brokers[0].ID())
	w.RunFor(30 * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pub.Publish(event.New("gps.location", "gps", w.Now()).
			Set("user", event.S(fmt.Sprintf("user-%02d", i%100))).
			Stamp(uint64(i)))
		w.RunFor(time.Second)
	}
	if delivered == 0 {
		b.Fatal("no deliveries")
	}
}

func BenchmarkFilterMatch(b *testing.B) {
	f := NewFilter(TypeIs("gps.location"), Eq("user", S("bob")), Gt("x", F(5)))
	ev := NewEvent("gps.location", "gps", 0).
		Set("user", S("bob")).Set("x", F(10)).Set("y", F(4)).Stamp(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Matches(ev) {
			b.Fatal("must match")
		}
	}
}

func BenchmarkFilterCovers(b *testing.B) {
	broad := NewFilter(TypeIs("gps.location"), Gt("x", F(0)))
	narrow := NewFilter(TypeIs("gps.location"), Eq("user", S("bob")), Gt("x", F(5)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pubsub.Covers(broad, narrow) {
			b.Fatal("must cover")
		}
	}
}

// BenchmarkEnvelopeEncode measures both codecs on the E-T11 envelope
// shapes: a pub/sub event publish at three payload sizes. The bytes/msg
// metric is the encoded frame length — the quantity simnet's bandwidth
// accounting and the transport both pay per message.
func BenchmarkEnvelopeEncode(b *testing.B) {
	reg := wire.NewRegistry()
	pubsub.RegisterMessages(reg)
	bin := wire.NewBinaryCodec(reg)
	mkEvent := func(attrs, body int) *event.Event {
		ev := NewEvent("weather.report", "thermo-eu", time.Second)
		for i := 0; i < attrs; i++ {
			switch i % 3 {
			case 0:
				ev.Set(fmt.Sprintf("s%02d", i), S(fmt.Sprintf("value-%d", i)))
			case 1:
				ev.Set(fmt.Sprintf("n%02d", i), I(int64(i)*1001))
			default:
				ev.Set(fmt.Sprintf("f%02d", i), F(float64(i)*3.25))
			}
		}
		if body > 0 {
			ev.SetBody("<payload>" + strings.Repeat("x", body) + "</payload>")
		}
		return ev.Stamp(1)
	}
	sizes := []struct {
		name        string
		attrs, body int
	}{
		{"small", 3, 0},
		{"medium", 8, 0},
		{"large", 24, 512},
	}
	for _, size := range sizes {
		env := &wire.Envelope{
			From: ids.FromString("bench-from"),
			To:   ids.FromString("bench-to"),
			Msg:  &pubsub.PubMsg{Event: mkEvent(size.attrs, size.body)},
		}
		for _, codec := range []wire.Codec{reg, bin} {
			b.Run(size.name+"/"+codec.Name(), func(b *testing.B) {
				frame, err := codec.Encode(env)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(frame)), "bytes/msg")
				b.SetBytes(int64(len(frame)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := codec.Encode(env); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEnvelopeDecode is the receive-side counterpart.
func BenchmarkEnvelopeDecode(b *testing.B) {
	reg := wire.NewRegistry()
	pubsub.RegisterMessages(reg)
	bin := wire.NewBinaryCodec(reg)
	env := &wire.Envelope{
		From: ids.FromString("bench-from"),
		To:   ids.FromString("bench-to"),
		Msg: &pubsub.PubMsg{Event: NewEvent("weather.report", "thermo-eu", time.Second).
			Set("region", S("eu")).Set("tempC", F(20.5)).Set("n", I(7)).Stamp(1)},
	}
	for _, codec := range []wire.Codec{reg, bin} {
		b.Run(codec.Name(), func(b *testing.B) {
			frame, err := codec.Encode(env)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(frame)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := codec.Decode(frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEventXMLRoundTrip(b *testing.B) {
	ev := NewEvent("weather.report", "thermo-eu", time.Second).
		Set("region", S("eu")).Set("tempC", F(20.5)).Set("n", I(7)).Stamp(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := event.Marshal(ev)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := event.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnginePut(b *testing.B) {
	sched := vclock.NewScheduler()
	kb := knowledge.NewKB()
	kb.AddSPO("bob", "likes", "ice cream")
	gis := knowledge.NewGIS()
	eng := match.NewEngine(sched, kb, gis, match.Options{})
	rule := &match.Rule{
		Name:     "hot",
		WindowMs: 60_000,
		Patterns: []match.Pattern{{
			Alias:  "w",
			Filter: pubsub.NewFilter(pubsub.TypeIs("weather.report")),
		}},
		Where: []match.Condition{{Type: "cmp", Left: "$w.tempC", Op: "gt", Right: "30"}},
		Emit:  match.Emit{Type: "alert.heat", Attrs: []match.EmitAttr{{Name: "t", From: "$w.tempC", Volatile: true}}},
	}
	if err := eng.AddRule(rule); err != nil {
		b.Fatal(err)
	}
	evs := make([]*event.Event, 256)
	for i := range evs {
		evs[i] = event.New("weather.report", "thermo", 0).
			Set("tempC", event.F(float64(i%40))).
			Set("region", event.S("eu")).
			Stamp(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Put(evs[i%len(evs)])
	}
}
