// The paper's second scenario (§1.1): "Bob, currently in Australia, walks
// past a restaurant previously recommended by Anna: her opinion of the
// restaurant should be delivered to Bob…". The recommendation knowledge
// lives in the P2P store (written from Europe); Bob's matchlet runs in the
// ap region; promiscuous caching pulls the knowledge close to where the
// matching happens, and repeat lookups get dramatically faster.
//
//	go run ./examples/restaurant
package main

import (
	"fmt"
	"time"

	active "github.com/gloss/active"
)

func main() {
	world, err := active.NewWorld(active.WorldConfig{Seed: 77, Nodes: 12})
	if err != nil {
		panic(err)
	}
	world.RunFor(active.ScenarioStart - world.Sim.Now())

	// The dine-out service: when a user walks past an open restaurant
	// that a friend of theirs recommends, and the user has no dinner
	// plans, deliver the friend's opinion.
	rule := &active.Rule{
		Name:     "recommended-restaurant",
		WindowMs: int64(10 * time.Minute / time.Millisecond),
		Patterns: []active.Pattern{{
			Alias:  "loc",
			Filter: active.NewFilter(active.TypeIs("gps.location")),
			Bind:   []active.Binding{{Attr: "user", Var: "U"}},
		}},
		Where: []active.Condition{
			{Type: "bindNearestSelling", Item: "dinner", Near: "$loc", Km: 0.3, Var: "P"},
			{Type: "kbBind", S: "$P", P: "recommended-by", Var: "R"},
			{Type: "kb", S: "$U", P: "knows", O: "$R"},
			{Type: "nokb", S: "$U", P: "has-dinner-plans", O: "true"},
			{Type: "openFor", Var: "$P", MinMinutes: 60},
		},
		Emit: active.Emit{
			Type: "suggestion.dine",
			Attrs: []active.EmitAttr{
				{Name: "user", From: "$U"},
				{Name: "place", From: "$P"},
				{Name: "recommendedBy", From: "$R"},
				{Name: "opinion", From: "kb:$P:opinion:worth a visit"},
			},
		},
	}
	svc := &active.ServiceDescriptor{
		Name:          "dine-out",
		Rules:         []*active.Rule{rule},
		Subscriptions: []active.Filter{active.NewFilter(active.TypeIs("gps.location"))},
		Facts: []active.Fact{
			{S: "bob", P: "knows", O: "anna"},
			{S: "harbour-grill", P: "recommended-by", O: "anna"},
			{S: "harbour-grill", P: "opinion", O: "best barramundi in Sydney"},
		},
		Places: []active.Place{{
			Name: "harbour-grill", Region: "ap", X: 15010, Y: -1990,
			Hours: active.Span{Open: 8 * time.Hour, Close: 23 * time.Hour},
			Sells: []string{"dinner"},
		}},
		Constraints: active.Constraints(active.MinInstances("matchlet/recommended-restaurant", "ap", 1)),
	}
	if _, err := world.DeployService(svc, 0); err != nil {
		panic(err)
	}
	world.RunFor(20 * time.Second)
	fmt.Println("dine-out service deployed; matchlet placed in the ap region")

	// Anna's recommendation is also written into the P2P store from a
	// European node — the globally distributed knowledge base.
	eu := world.Node(world.NodesInRegion("eu")[0])
	sy := eu.Sync
	sy.PublishSubject("harbour-grill", func(err error) {
		if err != nil {
			panic(err)
		}
	})
	world.RunFor(5 * time.Second)
	fmt.Println("recommendation stored in the P2P store (rooted wherever its GUID hashes)")

	// An ap-region node fetches the subject twice: the first read crosses
	// the planet, the second is served by the promiscuous cache.
	ap := world.Node(world.NodesInRegion("ap")[0])
	apSync := ap.Sync
	for attempt := 1; attempt <= 2; attempt++ {
		start := world.Sim.Now()
		done := false
		apSync.FetchSubject("harbour-grill", func(err error) {
			if err != nil {
				panic(err)
			}
			done = true
			fmt.Printf("fetch #%d of the recommendation from ap: %v\n",
				attempt, world.Sim.Now()-start)
		})
		world.RunFor(5 * time.Second)
		if !done {
			panic("fetch stuck")
		}
	}

	// Bob walks past the Harbour Grill.
	bobDevice := world.Node(world.NodesInRegion("ap")[1])
	bobDevice.Client.Subscribe(
		active.NewFilter(active.TypeIs("suggestion.dine"), active.Eq("user", active.S("bob"))),
		func(ev *active.Event) {
			fmt.Printf("📨 bob's device: %s — %s says %q\n",
				ev.GetString("place"), ev.GetString("recommendedBy"), ev.GetString("opinion"))
		})
	world.RunFor(2 * time.Second)

	fmt.Println("bob walks along the harbour…")
	bobDevice.Client.Publish(active.NewEvent("gps.location", "gps-bob", world.Sim.Now()).
		Set("user", active.S("bob")).
		Set("x", active.F(15010.1)).Set("y", active.F(-1990.05)).
		Stamp(1))
	world.RunFor(10 * time.Second)
	fmt.Println("done")
}
