// The paper's §1.1 scenario, end to end with simulated hardware: Bob and
// Anna carry GPS sensors, a thermometer reports South Street's weather, an
// RFID reader watches Janetta's doorway, and the matching engine infers
// that the two friends should meet for an ice cream while the shop is
// still open.
//
//	go run ./examples/icecream
package main

import (
	"fmt"
	"time"

	active "github.com/gloss/active"
	"github.com/gloss/active/internal/core"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/sensors"
)

func main() {
	world, err := active.NewWorld(active.WorldConfig{Seed: 25, Nodes: 9})
	if err != nil {
		panic(err)
	}
	world.RunFor(active.ScenarioStart - world.Sim.Now())
	tell := func(format string, args ...any) {
		t := world.Sim.Now() % (24 * time.Hour)
		fmt.Printf("[%02d:%02d] ", int(t.Hours()), int(t.Minutes())%60)
		fmt.Printf(format+"\n", args...)
	}

	if _, err := world.DeployService(active.IceCreamService(2, "eu"), 0); err != nil {
		panic(err)
	}
	world.RunFor(20 * time.Second)
	tell("service deployed; Janetta's opens 9:00–17:00 and sells ice cream")

	// Bob's and Anna's devices.
	for _, who := range []string{"bob", "anna"} {
		who := who
		world.Node(1).Client.Subscribe(
			active.NewFilter(active.TypeIs("suggestion.meet"), active.Eq("user", active.S(who))),
			func(ev *active.Event) {
				tell("📨 %s's device: meet %s at %s for %s",
					who, ev.GetString("friend"), ev.GetString("place"), ev.GetString("reason"))
			})
	}

	// Hardware, wrapped as pipeline sources (§4.2): GPS per user, a
	// thermometer, and an RFID reader at the shop door.
	host := world.Node(world.NodesInRegion("eu")[0])
	clock := host.Endpoint().Clock()
	publish := publisher{host}

	bobGPS := sensors.NewGPS(sensors.GPSConfig{
		User: "bob", Start: active.Coord{X: 10.00, Y: 4.20}, // far end of town
		SpeedKmH: 5, Interval: 30 * time.Second, Seed: 1,
	}, clock)
	bobGPS.ConnectTo(publish)
	bobGPS.Start()

	annaGPS := sensors.NewGPS(sensors.GPSConfig{
		User: "anna", Start: active.Coord{X: 10.25, Y: 3.95}, // already nearby
		SpeedKmH: 4, Interval: 30 * time.Second, Seed: 2,
	}, clock)
	annaGPS.Pause() // Anna lingers at her coordinate (56.3397, -2.80753 in the paper)
	annaGPS.ConnectTo(publish)
	annaGPS.Start()

	thermo := sensors.NewThermometer(sensors.ThermometerConfig{
		Region: "eu", BaseC: 19, AmpC: 5, Interval: 2 * time.Minute, Seed: 3,
	}, clock)
	thermo.ConnectTo(publish)
	thermo.Start()

	oracle := func(user string) (active.Coord, bool) {
		switch user {
		case "bob":
			return bobGPS.Position(), true
		case "anna":
			return annaGPS.Position(), true
		}
		return active.Coord{}, false
	}
	rfid := sensors.NewRFIDReader(sensors.RFIDConfig{
		Name: "janettas-door", At: active.Coord{X: 10.30, Y: 4.00},
		RadiusKm: 0.06, Interval: 15 * time.Second, Users: []string{"bob", "anna"},
	}, oracle, clock)
	rfid.ConnectTo(printer{world, "🚪 rfid"})
	rfid.Start()

	tell("Bob sets off toward North Street; Anna is already near Market Street")
	bobGPS.MoveTo(active.Coord{X: 10.20, Y: 4.05}) // North Street
	for minute := 0; minute < 12; minute++ {
		world.RunFor(time.Minute)
	}
	tell("Bob is in North Street at (%.2f, %.2f); it is %.1f°C",
		bobGPS.Position().X, bobGPS.Position().Y, thermo.TempAt(world.Sim.Now()))
	world.RunFor(5 * time.Minute)

	tell("walking on: Bob drops by the shop itself")
	bobGPS.MoveTo(active.Coord{X: 10.30, Y: 4.00})
	world.RunFor(10 * time.Minute)
	fmt.Println("done")
}

// publisher pushes sensor events onto the node's event bus.
type publisher struct{ n *core.ActiveNode }

func (p publisher) Name() string        { return "bus" }
func (p publisher) Put(ev *event.Event) { p.n.Client.Publish(ev) }

// printer narrates RFID reads.
type printer struct {
	w     *core.World
	label string
}

func (p printer) Name() string { return p.label }
func (p printer) Put(ev *event.Event) {
	t := p.w.Sim.Now() % (24 * time.Hour)
	verb := "left"
	if ev.Attrs["enter"].B {
		verb = "entered"
	}
	fmt.Printf("[%02d:%02d] %s: %s %s range of %s\n", int(t.Hours()), int(t.Minutes())%60,
		p.label, ev.GetString("user"), verb, ev.GetString("reader"))
}
