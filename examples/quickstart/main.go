// Quickstart: boot a simulated world, deploy the paper's ice-cream
// service, publish the three events of the §1.1 scenario, and receive the
// synthesised suggestion — the whole architecture in ~50 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	active "github.com/gloss/active"
)

func main() {
	// A 9-node world across three regions, fully deterministic.
	world, err := active.NewWorld(active.WorldConfig{Seed: 1, Nodes: 9})
	if err != nil {
		panic(err)
	}
	world.RunFor(active.ScenarioStart - world.Sim.Now()) // 9:45, shop open

	// Deploy the service: its matchlet rule, knowledge, GIS data and the
	// placement constraint ("2 matchlets in eu") all travel declaratively;
	// the evolution engine picks the hosts and pushes signed code bundles.
	svc, err := world.DeployService(active.IceCreamService(2, "eu"), 0)
	if err != nil {
		panic(err)
	}
	world.RunFor(20 * time.Second)
	fmt.Printf("matchlets deployed: %d\n", svc.Engine.Stats().DeploysOK)

	// Bob's device subscribes to suggestions for bob.
	world.Node(1).Client.Subscribe(
		active.NewFilter(active.TypeIs("suggestion.meet"), active.Eq("user", active.S("bob"))),
		func(ev *active.Event) {
			fmt.Printf("suggestion for %s: meet %s at %s (%.2f, %.2f)\n",
				ev.GetString("user"), ev.GetString("friend"), ev.GetString("place"),
				ev.GetNum("x"), ev.GetNum("y"))
		})
	world.RunFor(2 * time.Second)

	// The scenario's low-level events, published from different nodes.
	now := world.Sim.Now()
	world.Node(2).Client.Publish(active.NewEvent("weather.report", "thermo", now).
		Set("region", active.S("eu")).Set("tempC", active.F(20)).Stamp(1))
	world.Node(3).Client.Publish(active.NewEvent("gps.location", "gps-anna", now).
		Set("user", active.S("anna")).Set("x", active.F(10.25)).Set("y", active.F(3.95)).Stamp(2))
	world.RunFor(2 * time.Second)
	world.Node(4).Client.Publish(active.NewEvent("gps.location", "gps-bob", world.Sim.Now()).
		Set("user", active.S("bob")).Set("x", active.F(10.20)).Set("y", active.F(4.05)).Stamp(3))

	world.RunFor(10 * time.Second)
	fmt.Println("done")
}
