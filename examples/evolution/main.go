// Self-repair under churn (§4.4, Figure 3): a placement constraint —
// "at least 3 replicator components in the eu region" — is enforced by
// the evolution engine. Nodes crash and leave gracefully; the monitoring
// engine publishes departure events on behalf of the dead; the evolution
// engine re-deploys code bundles until the constraint holds again.
//
//	go run ./examples/evolution
package main

import (
	"fmt"
	"time"

	active "github.com/gloss/active"
	"github.com/gloss/active/internal/constraint"
	"github.com/gloss/active/internal/event"
	"github.com/gloss/active/internal/evolve"
	"github.com/gloss/active/internal/pubsub"
)

func main() {
	world, err := active.NewWorld(active.WorldConfig{Seed: 11, Nodes: 12})
	if err != nil {
		panic(err)
	}
	tell := func(format string, args ...any) {
		fmt.Printf("[t=%4.0fs] ", world.Sim.Now().Seconds())
		fmt.Printf(format+"\n", args...)
	}

	// Self-heal the event-service topology too: without keepers, killing
	// a broker would cut its whole subtree off the bus.
	world.StartBrokerKeepers(2 * time.Second)

	host := world.Node(0)
	eng := evolve.NewEngine(host.Endpoint(), host.Client, evolve.EngineOptions{
		Constraints: constraint.NewSet(
			&constraint.MinInstances{Program: "replicator", Region: "eu", N: 3},
		),
		MakeBundle: world.BundleMaker(nil),
	})
	mon := evolve.NewMonitor(host.Endpoint(), host.Client, 2*time.Second, 3)
	eng.Start()
	mon.Start()

	// Narrate the evolution machinery's event streams.
	host.Client.Subscribe(pubsub.NewFilter(pubsub.TypeIs(evolve.TypeDown)), func(ev *event.Event) {
		tell("⚠ monitor reports node %.8s down (on its behalf)", ev.GetString("node"))
	})
	host.Client.Subscribe(pubsub.NewFilter(pubsub.TypeIs(evolve.TypeLeaving)), func(ev *event.Event) {
		tell("👋 node %.8s announces graceful withdrawal", ev.GetString("node"))
	})

	count := func() int {
		n := 0
		for _, i := range world.NodesInRegion("eu") {
			n += len(world.Node(i).Server.Domains())
		}
		return n
	}

	world.RunFor(20 * time.Second)
	tell("constraint satisfied: %d replicators in eu (deploys ok: %d)",
		count(), eng.Stats().DeploysOK)

	// Crash a replicator host.
	var victim int
	for _, i := range world.NodesInRegion("eu") {
		if i != 0 && len(world.Node(i).Server.Domains()) > 0 {
			victim = i
			break
		}
	}
	tell("💥 crashing node %.8s (hosts a replicator)", world.Node(victim).ID().String())
	world.Sim.Node(world.Node(victim).ID()).Kill()
	world.RunFor(30 * time.Second)
	live := 0
	for _, i := range world.NodesInRegion("eu") {
		if world.Sim.Node(world.Node(i).ID()).Alive() {
			live += len(world.Node(i).Server.Domains())
		}
	}
	tell("healed: %d live replicators in eu (repairs recorded: %d, mean %v)",
		live, eng.RepairTimes.Count(), eng.RepairTimes.Mean())

	// Graceful departure: the node warns first, repair starts immediately.
	var leaver int
	for _, i := range world.NodesInRegion("eu") {
		if i != 0 && i != victim && len(world.Node(i).Server.Domains()) > 0 {
			leaver = i
			break
		}
	}
	tell("node %.8s will leave gracefully", world.Node(leaver).ID().String())
	world.Node(leaver).Advertiser.Leave()
	world.RunFor(2 * time.Second)
	world.Sim.Node(world.Node(leaver).ID()).Kill()
	world.RunFor(30 * time.Second)

	live = 0
	for _, i := range world.NodesInRegion("eu") {
		if world.Sim.Node(world.Node(i).ID()).Alive() {
			live += len(world.Node(i).Server.Domains())
		}
	}
	st := eng.Stats()
	tell("final: %d live replicators; deploys ok=%d failed=%d; violations seen=%d repaired=%d",
		live, st.DeploysOK, st.DeploysFailed, st.ViolationsSeen, st.Repaired)
	fmt.Println("done")
}
